"""Fluent builder for :class:`~repro.core.tree.TreeNetwork` instances.

Building trees directly from the :class:`~repro.core.tree.TreeNetwork`
constructor requires assembling three parallel collections (nodes, clients,
links).  :class:`TreeBuilder` offers a more convenient incremental interface
used by the examples, the reference trees of the paper and the random
generators::

    tree = (TreeBuilder()
            .add_node("root", capacity=10)
            .add_node("n1", capacity=10, parent="root", comm_time=2.0)
            .add_client("c1", requests=7, parent="n1")
            .add_client("c2", requests=5, parent="n1", qos=3)
            .build())

The first node added without an explicit parent becomes the root; every other
element must name an already-declared internal node as its parent.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.exceptions import TreeStructureError
from repro.core.tree import Client, InternalNode, Link, NodeId, TreeNetwork

__all__ = ["TreeBuilder"]


class TreeBuilder:
    """Incrementally assemble a :class:`~repro.core.tree.TreeNetwork`."""

    def __init__(self) -> None:
        self._nodes: Dict[NodeId, InternalNode] = {}
        self._clients: Dict[NodeId, Client] = {}
        self._links: List[Link] = []
        self._root: Optional[NodeId] = None

    # ------------------------------------------------------------------ #
    def add_node(
        self,
        node_id: NodeId,
        *,
        capacity: float,
        storage_cost: Optional[float] = None,
        parent: Optional[NodeId] = None,
        comm_time: float = 1.0,
        bandwidth: float = math.inf,
        **metadata,
    ) -> "TreeBuilder":
        """Declare an internal node.

        The first node declared without a ``parent`` becomes the root.  Any
        subsequent node must specify its parent, which has to be an already
        declared internal node.  ``comm_time`` and ``bandwidth`` describe the
        uplink from this node towards its parent.
        """
        if node_id in self._nodes or node_id in self._clients:
            raise TreeStructureError(f"duplicate identifier {node_id!r}")
        if parent is None:
            if self._root is not None:
                raise TreeStructureError(
                    f"root already set to {self._root!r}; node {node_id!r} "
                    "must declare a parent"
                )
            self._root = node_id
        else:
            self._require_parent(parent, node_id)
        self._nodes[node_id] = InternalNode(
            id=node_id,
            capacity=capacity,
            storage_cost=storage_cost,
            metadata=dict(metadata),
        )
        if parent is not None:
            self._links.append(
                Link(child=node_id, parent=parent, comm_time=comm_time, bandwidth=bandwidth)
            )
        return self

    def add_client(
        self,
        client_id: NodeId,
        *,
        requests: float,
        parent: NodeId,
        qos: float = math.inf,
        comm_time: float = 1.0,
        bandwidth: float = math.inf,
        **metadata,
    ) -> "TreeBuilder":
        """Declare a leaf client attached to internal node ``parent``."""
        if client_id in self._nodes or client_id in self._clients:
            raise TreeStructureError(f"duplicate identifier {client_id!r}")
        self._require_parent(parent, client_id)
        self._clients[client_id] = Client(
            id=client_id, requests=requests, qos=qos, metadata=dict(metadata)
        )
        self._links.append(
            Link(child=client_id, parent=parent, comm_time=comm_time, bandwidth=bandwidth)
        )
        return self

    def add_clients(
        self,
        prefix: str,
        count: int,
        *,
        requests: float,
        parent: NodeId,
        qos: float = math.inf,
        comm_time: float = 1.0,
        bandwidth: float = math.inf,
        start: int = 0,
    ) -> "TreeBuilder":
        """Declare ``count`` identical clients named ``f"{prefix}{k}"``.

        A convenience used by the parametric families of paper Section 3
        (e.g. the ``2n`` unit-request clients of Figure 2).
        """
        for k in range(start, start + count):
            self.add_client(
                f"{prefix}{k}",
                requests=requests,
                parent=parent,
                qos=qos,
                comm_time=comm_time,
                bandwidth=bandwidth,
            )
        return self

    # ------------------------------------------------------------------ #
    def _require_parent(self, parent: NodeId, child: NodeId) -> None:
        if parent not in self._nodes:
            raise TreeStructureError(
                f"parent {parent!r} of {child!r} is not a declared internal node "
                "(declare internal nodes top-down before attaching children)"
            )

    # ------------------------------------------------------------------ #
    @property
    def declared_nodes(self) -> int:
        """Number of internal nodes declared so far."""
        return len(self._nodes)

    @property
    def declared_clients(self) -> int:
        """Number of clients declared so far."""
        return len(self._clients)

    def build(self) -> TreeNetwork:
        """Validate the accumulated declarations and return the tree."""
        if self._root is None:
            raise TreeStructureError("no root node was declared")
        return TreeNetwork(self._nodes.values(), self._clients.values(), self._links)
