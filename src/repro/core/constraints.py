"""Constraint configuration for replica-placement problem instances.

The paper (Section 2.2) distinguishes three families of constraints:

* **server capacity** -- always enforced: the requests assigned to a replica
  never exceed its capacity ``W_j``;
* **QoS** -- optional: the transfer time (or hop distance, in the
  ``QoS = distance`` simplification) between a client and each of its servers
  is bounded by the client's ``q_i``;
* **link capacity** -- optional: the total flow of requests through a link
  never exceeds its bandwidth ``BW_l``.

:class:`ConstraintSet` records which of the optional constraints are active
and how QoS distances are measured.  Problem simplifications of
Section 2.2.3 (*Replica Cost*, *Replica Counting*) correspond to specific
constraint sets exposed as convenience constructors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.tree import NodeId, TreeNetwork

__all__ = ["QoSMode", "ConstraintSet"]


class QoSMode(enum.Enum):
    """How the client-to-server QoS metric is measured."""

    #: QoS disabled (the "No QoS" simplification).
    NONE = "none"
    #: ``QoS = distance``: the metric is the number of hops ``d(i, s)``.
    DISTANCE = "distance"
    #: Latency: the metric is the sum of link communication times.
    LATENCY = "latency"

    @classmethod
    def parse(cls, value) -> "QoSMode":
        """Coerce a :class:`QoSMode`, name or value string into a :class:`QoSMode`."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            for member in cls:
                if lowered in (member.value, member.name.lower()):
                    return member
        raise ValueError(f"cannot interpret {value!r} as a QoS mode")


@dataclass(frozen=True)
class ConstraintSet:
    """Which optional constraints a problem instance enforces.

    Parameters
    ----------
    qos_mode:
        How QoS is measured (:class:`QoSMode`); :attr:`QoSMode.NONE` disables
        the constraint entirely.
    enforce_bandwidth:
        Whether link bandwidths are enforced.
    """

    qos_mode: QoSMode = QoSMode.NONE
    enforce_bandwidth: bool = False

    # -- convenience constructors --------------------------------------- #
    @classmethod
    def none(cls) -> "ConstraintSet":
        """Only server capacities (the *Replica Cost* setting)."""
        return cls(qos_mode=QoSMode.NONE, enforce_bandwidth=False)

    @classmethod
    def qos_distance(cls, enforce_bandwidth: bool = False) -> "ConstraintSet":
        """Hop-count QoS, optionally with bandwidth limits."""
        return cls(qos_mode=QoSMode.DISTANCE, enforce_bandwidth=enforce_bandwidth)

    @classmethod
    def qos_latency(cls, enforce_bandwidth: bool = False) -> "ConstraintSet":
        """Latency QoS, optionally with bandwidth limits."""
        return cls(qos_mode=QoSMode.LATENCY, enforce_bandwidth=enforce_bandwidth)

    @classmethod
    def full(cls) -> "ConstraintSet":
        """Latency QoS and bandwidth limits (the most general instance)."""
        return cls(qos_mode=QoSMode.LATENCY, enforce_bandwidth=True)

    # -- queries --------------------------------------------------------- #
    @property
    def has_qos(self) -> bool:
        """``True`` when a QoS constraint is active."""
        return self.qos_mode is not QoSMode.NONE

    def qos_metric(self, tree: TreeNetwork, client_id: NodeId, server_id: NodeId) -> float:
        """QoS metric between ``client_id`` and ``server_id`` under this mode.

        Returns 0 when QoS is disabled so that any finite bound is trivially
        satisfied.
        """
        if self.qos_mode is QoSMode.NONE:
            return 0.0
        if self.qos_mode is QoSMode.DISTANCE:
            return float(tree.distance(client_id, server_id))
        return tree.latency(client_id, server_id)

    def allowed_servers(self, tree: TreeNetwork, client_id: NodeId):
        """Ancestors of ``client_id`` that satisfy its QoS bound.

        The result preserves the bottom-up (closest first) ancestor order,
        which several heuristics rely on.
        """
        bound = tree.client(client_id).qos
        servers = []
        for ancestor in tree.ancestors(client_id):
            if self.qos_metric(tree, client_id, ancestor) <= bound:
                servers.append(ancestor)
        return tuple(servers)

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        parts = []
        if self.qos_mode is QoSMode.NONE:
            parts.append("no QoS")
        else:
            parts.append(f"QoS={self.qos_mode.value}")
        parts.append("bandwidth limited" if self.enforce_bandwidth else "unbounded links")
        return ", ".join(parts)
