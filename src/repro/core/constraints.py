"""Constraint configuration for replica-placement problem instances.

The paper (Section 2.2) distinguishes three families of constraints:

* **server capacity** -- always enforced: the requests assigned to a replica
  never exceed its capacity ``W_j``;
* **QoS** -- optional: the transfer time (or hop distance, in the
  ``QoS = distance`` simplification) between a client and each of its servers
  is bounded by the client's ``q_i``;
* **link capacity** -- optional: the total flow of requests through a link
  never exceeds its bandwidth ``BW_l``.

:class:`ConstraintSet` records which of the optional constraints are active
and how QoS distances are measured.  Problem simplifications of
Section 2.2.3 (*Replica Cost*, *Replica Counting*) correspond to specific
constraint sets exposed as convenience constructors.

:class:`ClassedConstraintSet` extends the model past the paper: clients
belong to tenant :class:`~repro.qos.metrics.ServiceClass`\\ es and each
client's QoS bound applies to its class's weighted multi-metric **path
score** (:mod:`repro.qos.metrics`) instead of a single hop/latency count.
With non-negative class weights the score is monotone along root paths, so
the classed set rides the same memoised depth-threshold machinery as the
built-in modes (all three engines keep their shared ``can_cover``/sweep
path); non-monotone weights fall back to the documented per-pair
eligibility check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.core.tree import NodeId, TreeNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qos.metrics import ServiceClass

__all__ = ["QoSMode", "ConstraintSet", "ClassedConstraintSet"]


class QoSMode(enum.Enum):
    """How the client-to-server QoS metric is measured."""

    #: QoS disabled (the "No QoS" simplification).
    NONE = "none"
    #: ``QoS = distance``: the metric is the number of hops ``d(i, s)``.
    DISTANCE = "distance"
    #: Latency: the metric is the sum of link communication times.
    LATENCY = "latency"
    #: Weighted multi-metric path score (requires a
    #: :class:`ClassedConstraintSet`, which carries the class weights).
    SCORE = "score"

    @classmethod
    def parse(cls, value) -> "QoSMode":
        """Coerce a :class:`QoSMode`, name or value string into a :class:`QoSMode`."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            for member in cls:
                if lowered in (member.value, member.name.lower()):
                    return member
        raise ValueError(f"cannot interpret {value!r} as a QoS mode")


@dataclass(frozen=True)
class ConstraintSet:
    """Which optional constraints a problem instance enforces.

    Parameters
    ----------
    qos_mode:
        How QoS is measured (:class:`QoSMode`); :attr:`QoSMode.NONE` disables
        the constraint entirely.
    enforce_bandwidth:
        Whether link bandwidths are enforced.
    """

    qos_mode: QoSMode = QoSMode.NONE
    enforce_bandwidth: bool = False

    # -- convenience constructors --------------------------------------- #
    @classmethod
    def none(cls) -> "ConstraintSet":
        """Only server capacities (the *Replica Cost* setting)."""
        return cls(qos_mode=QoSMode.NONE, enforce_bandwidth=False)

    @classmethod
    def qos_distance(cls, enforce_bandwidth: bool = False) -> "ConstraintSet":
        """Hop-count QoS, optionally with bandwidth limits."""
        return cls(qos_mode=QoSMode.DISTANCE, enforce_bandwidth=enforce_bandwidth)

    @classmethod
    def qos_latency(cls, enforce_bandwidth: bool = False) -> "ConstraintSet":
        """Latency QoS, optionally with bandwidth limits."""
        return cls(qos_mode=QoSMode.LATENCY, enforce_bandwidth=enforce_bandwidth)

    @classmethod
    def full(cls) -> "ConstraintSet":
        """Latency QoS and bandwidth limits (the most general instance)."""
        return cls(qos_mode=QoSMode.LATENCY, enforce_bandwidth=True)

    # -- queries --------------------------------------------------------- #
    @property
    def has_qos(self) -> bool:
        """``True`` when a QoS constraint is active."""
        return self.qos_mode is not QoSMode.NONE

    def qos_metric(self, tree: TreeNetwork, client_id: NodeId, server_id: NodeId) -> float:
        """QoS metric between ``client_id`` and ``server_id`` under this mode.

        Returns 0 when QoS is disabled so that any finite bound is trivially
        satisfied.
        """
        if self.qos_mode is QoSMode.NONE:
            return 0.0
        if self.qos_mode is QoSMode.DISTANCE:
            return float(tree.distance(client_id, server_id))
        if self.qos_mode is QoSMode.SCORE:
            raise ValueError(
                "the 'score' QoS mode carries per-class metric weights and "
                "requires a ClassedConstraintSet, not a plain ConstraintSet"
            )
        return tree.latency(client_id, server_id)

    def allowed_servers(self, tree: TreeNetwork, client_id: NodeId):
        """Ancestors of ``client_id`` that satisfy its QoS bound.

        The result preserves the bottom-up (closest first) ancestor order,
        which several heuristics rely on.
        """
        bound = tree.client(client_id).qos
        servers = []
        for ancestor in tree.ancestors(client_id):
            if self.qos_metric(tree, client_id, ancestor) <= bound:
                servers.append(ancestor)
        return tuple(servers)

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        parts = []
        if self.qos_mode is QoSMode.NONE:
            parts.append("no QoS")
        else:
            parts.append(f"QoS={self.qos_mode.value}")
        parts.append("bandwidth limited" if self.enforce_bandwidth else "unbounded links")
        return ", ".join(parts)


@dataclass(frozen=True)
class ClassedConstraintSet(ConstraintSet):
    """Multi-metric QoS with tenant service classes.

    Every client belongs to one :class:`~repro.qos.metrics.ServiceClass`
    (via ``assignments``, falling back to ``default_class``); its QoS
    bound ``q_i`` applies to the class's scalar **path score** -- the
    weighted, scale-normalised combination of the accumulated
    latency/jitter/loss/bandwidth metrics of the links between the
    client and a candidate server (:mod:`repro.qos.metrics`).

    With every class's weights non-negative (:attr:`monotone_path_metric`)
    the score is non-decreasing toward the root, so eligibility is a
    depth threshold per client and the instance runs on the memoised
    threshold machinery of :class:`repro.core.index.TreeIndex` -- the
    same shared ``can_cover``/sweep code path of all three engines.
    Negative weights (a class that *prefers* longer paths on some axis)
    are legal but non-monotone: those instances use the documented
    per-pair fallback (``qos_satisfied`` per candidate pair).

    The set is frozen and hashable; its auto-generated ``repr`` is
    deterministic, which is what
    :func:`repro.serving.fingerprint.problem_fingerprint` hashes for
    subclassed constraint sets.
    """

    qos_mode: QoSMode = QoSMode.SCORE
    enforce_bandwidth: bool = False
    classes: Tuple["ServiceClass", ...] = ()
    assignments: Tuple[Tuple[NodeId, str], ...] = ()
    default_class: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "qos_mode", QoSMode.parse(self.qos_mode))
        if self.qos_mode is not QoSMode.SCORE:
            raise ValueError(
                "ClassedConstraintSet measures QoS as a per-class path "
                f"score; qos_mode must be 'score', got {self.qos_mode.value!r}"
            )
        classes = tuple(self.classes)
        if not classes:
            raise ValueError("ClassedConstraintSet needs at least one class")
        names = [cls.name for cls in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate service class names in {names}")
        object.__setattr__(self, "classes", classes)
        default = self.default_class or names[0]
        if default not in names:
            raise ValueError(
                f"default_class {default!r} is not one of {names}"
            )
        object.__setattr__(self, "default_class", default)
        assignments = tuple(
            sorted(
                ((client, str(name)) for client, name in self.assignments),
                key=lambda pair: (repr(pair[0]), pair[1]),
            )
        )
        known = set(names)
        seen: Dict[NodeId, str] = {}
        for client, name in assignments:
            if name not in known:
                raise ValueError(
                    f"client {client!r} assigned to unknown class {name!r}"
                )
            if client in seen and seen[client] != name:
                raise ValueError(
                    f"client {client!r} assigned to both {seen[client]!r} "
                    f"and {name!r}"
                )
            seen[client] = name
        object.__setattr__(self, "assignments", assignments)

    # -- convenience constructors --------------------------------------- #
    @classmethod
    def standard(
        cls,
        tree: Optional[TreeNetwork] = None,
        *,
        classes: Optional[Sequence["ServiceClass"]] = None,
        enforce_bandwidth: bool = False,
        seed: int = 0,
    ) -> "ClassedConstraintSet":
        """The gold/silver/bronze default mix over ``tree``'s clients.

        Clients are assigned deterministically (seeded shuffle, then
        round-robin over the classes in priority order); with no tree,
        every client falls to ``default_class``.
        """
        import random

        from repro.qos.metrics import DEFAULT_CLASSES

        chosen = tuple(classes) if classes is not None else DEFAULT_CLASSES
        ordered = sorted(chosen, key=lambda entry: (entry.priority, entry.name))
        assignments: Tuple[Tuple[NodeId, str], ...] = ()
        if tree is not None:
            client_ids = sorted(tree.client_ids, key=repr)
            random.Random(seed).shuffle(client_ids)
            assignments = tuple(
                (client, ordered[position % len(ordered)].name)
                for position, client in enumerate(client_ids)
            )
        return cls(
            enforce_bandwidth=enforce_bandwidth,
            classes=chosen,
            assignments=assignments,
            default_class=ordered[-1].name,
        )

    # -- class lookup ---------------------------------------------------- #
    def _lookup(self) -> Tuple[Dict[str, "ServiceClass"], Dict[NodeId, str]]:
        cached = getattr(self, "_lookup_cache", None)
        if cached is None:
            cached = (
                {cls.name: cls for cls in self.classes},
                dict(self.assignments),
            )
            object.__setattr__(self, "_lookup_cache", cached)
        return cached

    def class_named(self, name: str) -> "ServiceClass":
        """The :class:`~repro.qos.metrics.ServiceClass` called ``name``."""
        by_name, _ = self._lookup()
        try:
            return by_name[name]
        except KeyError:
            raise ValueError(f"unknown service class {name!r}") from None

    def class_of(self, client_id: NodeId) -> "ServiceClass":
        """The class serving ``client_id`` (``default_class`` if unassigned)."""
        by_name, assigned = self._lookup()
        return by_name[assigned.get(client_id, self.default_class)]

    # -- queries --------------------------------------------------------- #
    @property
    def monotone_path_metric(self) -> bool:
        """True when every class's path score is monotone along root paths.

        The supports-thresholds predicate of
        :func:`repro.core.index.supports_qos_thresholds` keys off this:
        monotone classed sets take the memoised threshold walk, the rest
        take the per-pair fallback.
        """
        return all(entry.monotone for entry in self.classes)

    def iter_ancestor_scores(self, tree: TreeNetwork, client_id: NodeId):
        """Yield ``(ancestor, path_score)`` bottom-up for ``client_id``.

        One shared accumulation (see
        :func:`repro.qos.metrics.iter_ancestor_scores`) keeps the
        threshold walk, the per-pair metric and ``allowed_servers``
        bit-identical.
        """
        from repro.qos.metrics import iter_ancestor_scores

        return iter_ancestor_scores(tree, client_id, self.class_of(client_id))

    def qos_metric(self, tree: TreeNetwork, client_id: NodeId, server_id: NodeId) -> float:
        """The client's class path score from ``client_id`` to ``server_id``."""
        for ancestor, score in self.iter_ancestor_scores(tree, client_id):
            if ancestor == server_id:
                return score
        from repro.core.exceptions import TreeStructureError

        raise TreeStructureError(
            f"{server_id!r} is not an ancestor of {client_id!r}"
        )

    def allowed_servers(self, tree: TreeNetwork, client_id: NodeId):
        """Ancestors whose path score meets the client's bound (no early
        break: correct for monotone and non-monotone weights alike)."""
        bound = tree.client(client_id).qos
        return tuple(
            ancestor
            for ancestor, score in self.iter_ancestor_scores(tree, client_id)
            if score <= bound
        )

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        names = "/".join(entry.name for entry in self.classes)
        parts = [f"QoS=score ({names})"]
        if not self.monotone_path_metric:
            parts.append("non-monotone")
        parts.append(
            "bandwidth limited" if self.enforce_bandwidth else "unbounded links"
        )
        return ", ".join(parts)
