"""The distribution-tree data structure.

The framework of the paper (Section 2) considers a distribution tree ``T``
whose nodes are partitioned into a set of *clients* ``C`` (the leaves) and a
set of *internal nodes* ``N`` (candidate servers).  Each client ``i`` issues
``r_i`` requests per time unit and carries a QoS bound ``q_i``; each internal
node ``j`` has a processing capacity ``W_j`` and a storage cost ``s_j``;
each tree edge ``l`` has a communication time ``comm_l`` and a bandwidth
``BW_l``.

:class:`TreeNetwork` is the single authoritative representation of such a
tree used throughout the package.  It is immutable after construction (all
mutating operations go through :class:`repro.core.builder.TreeBuilder` or the
functional helpers of this module), which lets it precompute and cache the
structural queries every algorithm relies on: parent/children lookups,
ancestor paths, subtree client sets and subtree request sums.

Node identifiers can be any hashable value; strings are used throughout the
examples and generators.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.exceptions import TreeStructureError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qos.metrics import QoSMetrics

NodeId = Hashable

__all__ = ["NodeId", "InternalNode", "Client", "Link", "TreeNetwork"]


@dataclass(frozen=True)
class InternalNode:
    """An internal tree node, i.e. a candidate replica server.

    Parameters
    ----------
    id:
        Unique identifier of the node.
    capacity:
        Processing capacity ``W_j``: the number of requests per time unit the
        node can serve once equipped with a replica.
    storage_cost:
        Storage cost ``s_j`` paid when placing a replica on this node.  In
        the *Replica Cost* problem the cost equals the capacity; in the
        *Replica Counting* problem it is 1.  When left to ``None`` the cost
        defaults to the capacity (the paper's ``s_j = W_j`` convention).
    """

    id: NodeId
    capacity: float
    storage_cost: Optional[float] = None
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise TreeStructureError(
                f"node {self.id!r} has negative capacity {self.capacity}"
            )
        if self.storage_cost is None:
            object.__setattr__(self, "storage_cost", float(self.capacity))
        elif self.storage_cost < 0:
            raise TreeStructureError(
                f"node {self.id!r} has negative storage cost {self.storage_cost}"
            )

    def with_storage_cost(self, storage_cost: float) -> "InternalNode":
        """Return a copy of this node with a different storage cost."""
        return replace(self, storage_cost=storage_cost)


@dataclass(frozen=True)
class Client:
    """A leaf client issuing requests.

    Parameters
    ----------
    id:
        Unique identifier of the client.
    requests:
        Number of requests ``r_i`` issued per time unit.
    qos:
        QoS bound ``q_i``.  Interpreted either as a hop-count bound
        (``QoS = distance`` simplification) or a latency bound, depending on
        the problem's QoS mode.  ``math.inf`` (the default) disables the
        constraint for this client.
    """

    id: NodeId
    requests: float
    qos: float = math.inf
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.requests < 0:
            raise TreeStructureError(
                f"client {self.id!r} has negative request rate {self.requests}"
            )
        if self.qos <= 0:
            raise TreeStructureError(
                f"client {self.id!r} has non-positive QoS bound {self.qos}"
            )


@dataclass(frozen=True)
class Link:
    """A tree edge ``child -> parent`` with latency and bandwidth attributes.

    Parameters
    ----------
    child, parent:
        End points of the edge; requests flow from ``child`` towards
        ``parent`` (upwards).
    comm_time:
        Communication time ``comm_l`` used by latency-based QoS.
    bandwidth:
        Maximum number of requests per time unit the link can carry
        (``BW_l``).  ``math.inf`` disables the constraint.
    metrics:
        Optional multi-metric QoS annotation
        (:class:`repro.qos.metrics.QoSMetrics`: latency, jitter, loss,
        residual bandwidth) consumed by the classed constraint sets of
        :class:`repro.core.constraints.ClassedConstraintSet`.  ``None``
        (the default) makes the link behave like the pre-metric model
        (latency = ``comm_time``, loss-free, bandwidth = ``bandwidth``).
    """

    child: NodeId
    parent: NodeId
    comm_time: float = 1.0
    bandwidth: float = math.inf
    metrics: Optional["QoSMetrics"] = None

    def __post_init__(self) -> None:
        if self.comm_time < 0:
            raise TreeStructureError(
                f"link {self.child!r}->{self.parent!r} has negative comm time"
            )
        if self.bandwidth < 0:
            raise TreeStructureError(
                f"link {self.child!r}->{self.parent!r} has negative bandwidth"
            )

    @property
    def key(self) -> Tuple[NodeId, NodeId]:
        """The ``(child, parent)`` pair identifying this link."""
        return (self.child, self.parent)


class TreeNetwork:
    """An immutable distribution tree of internal nodes and leaf clients.

    Instances are usually created through
    :class:`repro.core.builder.TreeBuilder` or the generators of
    :mod:`repro.workloads`; the constructor below accepts already-validated
    component collections and checks the global structure (single root,
    acyclicity, clients as leaves).

    Parameters
    ----------
    nodes:
        Iterable of :class:`InternalNode`.
    clients:
        Iterable of :class:`Client`.
    links:
        Iterable of :class:`Link` connecting every non-root element to its
        parent (which must be an internal node).
    """

    __slots__ = (
        "_nodes",
        "_clients",
        "_links",
        "_parent",
        "_children",
        "_root",
        "_order",
        "_ancestors",
        "_depth",
        "_subtree_clients",
        "_subtree_requests",
        "_post_order_nodes",
        "_node_ids",
        "_client_ids",
        "_children_tuples",
        "_child_nodes",
        "_child_clients",
        "_index_cache",
        "_patch_source",
        "_hash",
    )

    def __init__(
        self,
        nodes: Iterable[InternalNode],
        clients: Iterable[Client],
        links: Iterable[Link],
    ) -> None:
        self._nodes: Dict[NodeId, InternalNode] = {}
        for node in nodes:
            if node.id in self._nodes:
                raise TreeStructureError(f"duplicate internal node id {node.id!r}")
            self._nodes[node.id] = node

        self._clients: Dict[NodeId, Client] = {}
        for client in clients:
            if client.id in self._clients:
                raise TreeStructureError(f"duplicate client id {client.id!r}")
            if client.id in self._nodes:
                raise TreeStructureError(
                    f"identifier {client.id!r} used both as client and internal node"
                )
            self._clients[client.id] = client

        self._links: Dict[Tuple[NodeId, NodeId], Link] = {}
        self._parent: Dict[NodeId, NodeId] = {}
        self._children: Dict[NodeId, List[NodeId]] = {nid: [] for nid in self._nodes}
        for link in links:
            if link.child not in self._nodes and link.child not in self._clients:
                raise TreeStructureError(f"link child {link.child!r} is not declared")
            if link.parent not in self._nodes:
                raise TreeStructureError(
                    f"link parent {link.parent!r} is not an internal node "
                    "(clients must be leaves)"
                )
            if link.child in self._parent:
                raise TreeStructureError(f"{link.child!r} has more than one parent")
            if link.child == link.parent:
                raise TreeStructureError(f"self-loop on {link.child!r}")
            self._links[link.key] = link
            self._parent[link.child] = link.parent
            self._children[link.parent].append(link.child)

        self._validate_and_index()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _validate_and_index(self) -> None:
        if not self._nodes:
            raise TreeStructureError("a tree network needs at least one internal node")

        roots = [nid for nid in self._nodes if nid not in self._parent]
        if len(roots) != 1:
            raise TreeStructureError(
                f"expected exactly one root internal node, found {len(roots)}: {roots!r}"
            )
        self._root = roots[0]

        dangling_clients = [cid for cid in self._clients if cid not in self._parent]
        if dangling_clients:
            raise TreeStructureError(
                f"clients without a parent link: {dangling_clients!r}"
            )

        # Breadth-first order from the root; also detects unreachable elements
        # (which, combined with the single-parent check, detects cycles).
        order: List[NodeId] = []
        depth: Dict[NodeId, int] = {self._root: 0}
        queue: deque = deque([self._root])
        while queue:
            current = queue.popleft()
            order.append(current)
            for child in self._children.get(current, ()):  # clients have no entry
                depth[child] = depth[current] + 1
                queue.append(child)
        reachable = set(order)
        unreachable = (set(self._nodes) | set(self._clients)) - reachable
        if unreachable:
            raise TreeStructureError(
                f"elements unreachable from the root (cycle or disconnected): "
                f"{sorted(map(repr, unreachable))}"
            )
        self._order = tuple(order)
        self._depth = depth

        # Ancestor chains (bottom-up, excluding the element itself).
        ancestors: Dict[NodeId, Tuple[NodeId, ...]] = {self._root: ()}
        for element in self._order:
            if element == self._root:
                continue
            parent = self._parent[element]
            ancestors[element] = (parent,) + ancestors[parent]
        self._ancestors = ancestors

        # Subtree client sets and request sums, computed in reverse BFS order
        # (children before parents).
        subtree_clients: Dict[NodeId, Tuple[NodeId, ...]] = {}
        subtree_requests: Dict[NodeId, float] = {}
        post_nodes: List[NodeId] = []
        for element in reversed(self._order):
            if element in self._clients:
                subtree_clients[element] = (element,)
                subtree_requests[element] = self._clients[element].requests
            else:
                acc: List[NodeId] = []
                total = 0.0
                for child in self._children[element]:
                    acc.extend(subtree_clients[child])
                    total += subtree_requests[child]
                subtree_clients[element] = tuple(acc)
                subtree_requests[element] = total
                post_nodes.append(element)
        self._subtree_clients = subtree_clients
        self._subtree_requests = subtree_requests
        #: internal nodes in post-order (children before parents)
        self._post_order_nodes = tuple(post_nodes)
        self._node_ids = tuple(nid for nid in self._order if nid in self._nodes)
        self._client_ids = tuple(cid for cid in self._order if cid in self._clients)
        self._children_tuples = {nid: tuple(kids) for nid, kids in self._children.items()}
        self._child_nodes = {
            nid: tuple(c for c in kids if c in self._nodes)
            for nid, kids in self._children_tuples.items()
        }
        self._child_clients = {
            nid: tuple(c for c in kids if c in self._clients)
            for nid, kids in self._children_tuples.items()
        }
        self._index_cache = None
        self._patch_source = None
        self._hash = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> NodeId:
        """Identifier of the root internal node."""
        return self._root

    @property
    def node_ids(self) -> Tuple[NodeId, ...]:
        """Identifiers of the internal nodes, in breadth-first order."""
        return self._node_ids

    @property
    def client_ids(self) -> Tuple[NodeId, ...]:
        """Identifiers of the clients, in breadth-first order."""
        return self._client_ids

    @property
    def link_keys(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """``(child, parent)`` keys of every link."""
        return tuple(self._links)

    def node(self, node_id: NodeId) -> InternalNode:
        """Return the :class:`InternalNode` with identifier ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TreeStructureError(f"unknown internal node {node_id!r}") from None

    def client(self, client_id: NodeId) -> Client:
        """Return the :class:`Client` with identifier ``client_id``."""
        try:
            return self._clients[client_id]
        except KeyError:
            raise TreeStructureError(f"unknown client {client_id!r}") from None

    def link(self, child: NodeId, parent: Optional[NodeId] = None) -> Link:
        """Return the link going up from ``child`` (optionally checking its parent)."""
        actual_parent = self.parent(child)
        if actual_parent is None:
            raise TreeStructureError(f"{child!r} is the root and has no uplink")
        if parent is not None and parent != actual_parent:
            raise TreeStructureError(
                f"{child!r} has parent {actual_parent!r}, not {parent!r}"
            )
        return self._links[(child, actual_parent)]

    def is_client(self, element_id: NodeId) -> bool:
        """``True`` when ``element_id`` identifies a client leaf."""
        return element_id in self._clients

    def is_node(self, element_id: NodeId) -> bool:
        """``True`` when ``element_id`` identifies an internal node."""
        return element_id in self._nodes

    def __contains__(self, element_id: NodeId) -> bool:
        return element_id in self._nodes or element_id in self._clients

    def nodes(self) -> Iterator[InternalNode]:
        """Iterate over internal nodes in breadth-first order."""
        for nid in self.node_ids:
            yield self._nodes[nid]

    def clients(self) -> Iterator[Client]:
        """Iterate over clients in breadth-first order."""
        for cid in self.client_ids:
            yield self._clients[cid]

    def links(self) -> Iterator[Link]:
        """Iterate over links."""
        return iter(self._links.values())

    # ------------------------------------------------------------------ #
    # structural queries
    # ------------------------------------------------------------------ #
    def parent(self, element_id: NodeId) -> Optional[NodeId]:
        """Parent of ``element_id`` or ``None`` for the root."""
        if element_id == self._root:
            return None
        try:
            return self._parent[element_id]
        except KeyError:
            raise TreeStructureError(f"unknown element {element_id!r}") from None

    def children(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Children (internal nodes and clients) of an internal node."""
        try:
            return self._children_tuples[node_id]
        except KeyError:
            raise TreeStructureError(f"unknown internal node {node_id!r}") from None

    def child_nodes(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Children of ``node_id`` that are internal nodes."""
        try:
            return self._child_nodes[node_id]
        except KeyError:
            raise TreeStructureError(f"unknown internal node {node_id!r}") from None

    def child_clients(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Children of ``node_id`` that are clients."""
        try:
            return self._child_clients[node_id]
        except KeyError:
            raise TreeStructureError(f"unknown internal node {node_id!r}") from None

    def ancestors(self, element_id: NodeId) -> Tuple[NodeId, ...]:
        """Ancestors of ``element_id``, bottom-up, excluding the element itself.

        This is the paper's ``Ancestors(k)`` set: the internal nodes on the
        unique path from ``element_id`` (excluded) up to the root (included).
        """
        if element_id == self._root:
            return ()
        try:
            return self._ancestors[element_id]
        except KeyError:
            raise TreeStructureError(f"unknown element {element_id!r}") from None

    def is_ancestor(self, ancestor_id: NodeId, element_id: NodeId) -> bool:
        """``True`` when ``ancestor_id`` lies on the path from ``element_id`` to the root."""
        return ancestor_id in self.ancestors(element_id)

    def depth(self, element_id: NodeId) -> int:
        """Number of links between ``element_id`` and the root."""
        try:
            return self._depth[element_id]
        except KeyError:
            raise TreeStructureError(f"unknown element {element_id!r}") from None

    def height(self) -> int:
        """Maximum depth over all elements of the tree."""
        return max(self._depth.values())

    def path_links(self, element_id: NodeId, ancestor_id: NodeId) -> Tuple[Link, ...]:
        """Links of ``path[element_id -> ancestor_id]`` (paper notation).

        ``ancestor_id`` must be an ancestor of ``element_id`` (or the element
        itself, yielding an empty path).
        """
        if element_id == ancestor_id:
            return ()
        if ancestor_id not in self.ancestors(element_id):
            raise TreeStructureError(
                f"{ancestor_id!r} is not an ancestor of {element_id!r}"
            )
        links: List[Link] = []
        current = element_id
        while current != ancestor_id:
            parent = self._parent[current]
            links.append(self._links[(current, parent)])
            current = parent
        return tuple(links)

    def distance(self, element_id: NodeId, ancestor_id: NodeId) -> int:
        """Hop count ``d(i, s)`` between an element and one of its ancestors."""
        if element_id == ancestor_id:
            return 0
        if ancestor_id not in self.ancestors(element_id):
            raise TreeStructureError(
                f"{ancestor_id!r} is not an ancestor of {element_id!r}"
            )
        return self._depth[element_id] - self._depth[ancestor_id]

    def latency(self, element_id: NodeId, ancestor_id: NodeId) -> float:
        """Sum of link communication times on ``path[element_id -> ancestor_id]``."""
        return sum(link.comm_time for link in self.path_links(element_id, ancestor_id))

    def subtree_clients(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Clients located in ``subtree(node_id)`` (paper's ``clients(j)``)."""
        if node_id not in self._nodes and node_id not in self._clients:
            raise TreeStructureError(f"unknown element {node_id!r}")
        return self._subtree_clients[node_id]

    def subtree_requests(self, node_id: NodeId) -> float:
        """Total number of requests issued inside ``subtree(node_id)``."""
        if node_id not in self._nodes and node_id not in self._clients:
            raise TreeStructureError(f"unknown element {node_id!r}")
        return self._subtree_requests[node_id]

    def subtree_nodes(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Internal nodes of ``subtree(node_id)``, including ``node_id`` itself."""
        if node_id not in self._nodes:
            raise TreeStructureError(f"unknown internal node {node_id!r}")
        result: List[NodeId] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self.child_nodes(current))
        return tuple(result)

    def breadth_first_nodes(self) -> Tuple[NodeId, ...]:
        """Internal nodes in breadth-first (top-down) order."""
        return self.node_ids

    def post_order_nodes(self) -> Tuple[NodeId, ...]:
        """Internal nodes in post-order (every child node before its parent)."""
        return self._post_order_nodes

    # ------------------------------------------------------------------ #
    # aggregate quantities
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Problem size ``s = |C| + |N|`` used throughout the paper."""
        return len(self._nodes) + len(self._clients)

    def total_requests(self) -> float:
        """Total request rate ``sum_i r_i``."""
        return sum(c.requests for c in self._clients.values())

    def total_capacity(self) -> float:
        """Total server capacity ``sum_j W_j``."""
        return sum(n.capacity for n in self._nodes.values())

    def load_factor(self) -> float:
        """The paper's load ``lambda = sum_i r_i / sum_j W_j``."""
        capacity = self.total_capacity()
        if capacity == 0:
            return math.inf if self.total_requests() > 0 else 0.0
        return self.total_requests() / capacity

    def is_homogeneous(self) -> bool:
        """``True`` when all internal nodes share the same capacity."""
        capacities = {n.capacity for n in self._nodes.values()}
        return len(capacities) <= 1

    def uniform_capacity(self) -> float:
        """The shared capacity ``W`` of a homogeneous tree.

        Raises
        ------
        TreeStructureError
            If the tree is heterogeneous.
        """
        capacities = {n.capacity for n in self._nodes.values()}
        if len(capacities) != 1:
            raise TreeStructureError(
                "uniform_capacity() requires a homogeneous tree; capacities "
                f"found: {sorted(capacities)}"
            )
        return next(iter(capacities))

    def has_qos_bounds(self) -> bool:
        """``True`` when at least one client has a finite QoS bound."""
        return any(math.isfinite(c.qos) for c in self._clients.values())

    def has_bandwidth_limits(self) -> bool:
        """``True`` when at least one link has a finite bandwidth."""
        return any(math.isfinite(l.bandwidth) for l in self._links.values())

    # ------------------------------------------------------------------ #
    # conversions and dunder methods
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Export the tree as a :class:`networkx.DiGraph` (edges child -> parent)."""
        import networkx as nx

        graph = nx.DiGraph()
        for node in self._nodes.values():
            graph.add_node(
                node.id,
                kind="node",
                capacity=node.capacity,
                storage_cost=node.storage_cost,
            )
        for client in self._clients.values():
            graph.add_node(
                client.id, kind="client", requests=client.requests, qos=client.qos
            )
        for link in self._links.values():
            graph.add_edge(
                link.child,
                link.parent,
                comm_time=link.comm_time,
                bandwidth=link.bandwidth,
            )
        return graph

    def with_nodes(self, nodes: Iterable[InternalNode]) -> "TreeNetwork":
        """Return a copy of this tree with some internal nodes replaced.

        Nodes are matched by identifier; the topology is unchanged.  This is
        used e.g. to re-cost a tree (Replica Counting sets every storage cost
        to 1) without rebuilding it.
        """
        override = {n.id: n for n in nodes}
        unknown = set(override) - set(self._nodes)
        if unknown:
            raise TreeStructureError(f"unknown internal nodes {sorted(map(repr, unknown))}")
        new_nodes = [override.get(nid, node) for nid, node in self._nodes.items()]
        return TreeNetwork(new_nodes, self._clients.values(), self._links.values())

    def with_clients(self, clients: Iterable[Client]) -> "TreeNetwork":
        """Return a copy of this tree with some clients replaced (matched by id)."""
        override = {c.id: c for c in clients}
        unknown = set(override) - set(self._clients)
        if unknown:
            raise TreeStructureError(f"unknown clients {sorted(map(repr, unknown))}")
        new_clients = [override.get(cid, client) for cid, client in self._clients.items()]
        return TreeNetwork(self._nodes.values(), new_clients, self._links.values())

    def with_requests(self, requests: Mapping[NodeId, float]) -> "TreeNetwork":
        """Return an *epoch fork* of this tree with some request rates replaced.

        Unlike :meth:`with_clients`, which rebuilds and re-validates the whole
        network, this fork reuses every structural cache (topology, ancestor
        chains, depths, subtree client layouts) of the original tree: only the
        affected :class:`Client` records, the subtree request sums and the
        workload vectors of the cached :class:`~repro.core.index.TreeIndex`
        are recomputed.  Subtree request sums are re-accumulated in the exact
        order of a fresh build, so the fork is bit-for-bit identical to
        ``with_clients`` with the same rates -- which is what lets the
        incremental re-solver guarantee solutions identical to from-scratch
        solves on dynamic-workload epochs.

        Rates equal to the current ones are ignored; when nothing actually
        changes the fork still returns a new (cheap) instance so epochs stay
        distinct objects.
        """
        changed: Dict[NodeId, float] = {}
        for client_id, value in requests.items():
            client = self._clients.get(client_id)
            if client is None:
                raise TreeStructureError(f"unknown client {client_id!r}")
            value = float(value)
            if value != client.requests:
                changed[client_id] = value

        fork = TreeNetwork.__new__(TreeNetwork)
        # Shared immutable structure: same topology, links and internal nodes.
        fork._nodes = self._nodes
        fork._links = self._links
        fork._parent = self._parent
        fork._children = self._children
        fork._root = self._root
        fork._order = self._order
        fork._ancestors = self._ancestors
        fork._depth = self._depth
        fork._subtree_clients = self._subtree_clients
        fork._post_order_nodes = self._post_order_nodes
        fork._node_ids = self._node_ids
        fork._client_ids = self._client_ids
        fork._children_tuples = self._children_tuples
        fork._child_nodes = self._child_nodes
        fork._child_clients = self._child_clients
        fork._hash = None
        fork._index_cache = None

        if not changed:
            fork._clients = self._clients
            fork._subtree_requests = self._subtree_requests
            fork._patch_source = (self, ())
            return fork

        fork._clients = dict(self._clients)
        for client_id, value in changed.items():
            fork._clients[client_id] = replace(self._clients[client_id], requests=value)

        # Re-accumulate the subtree request sums bottom-up in the same order
        # as _validate_and_index so float results match a fresh build exactly.
        subtree_requests: Dict[NodeId, float] = {}
        clients_map = fork._clients
        children_map = self._children
        for element in reversed(self._order):
            client = clients_map.get(element)
            if client is not None:
                subtree_requests[element] = client.requests
            else:
                total = 0.0
                for child in children_map[element]:
                    total += subtree_requests[child]
                subtree_requests[element] = total
        fork._subtree_requests = subtree_requests
        fork._patch_source = (self, tuple(changed))
        return fork

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeNetwork):
            return NotImplemented
        return (
            self._nodes == other._nodes
            and self._clients == other._clients
            and self._links == other._links
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    frozenset(self._nodes.items()),
                    frozenset(self._clients.items()),
                    frozenset(self._links),
                )
            )
        return self._hash

    def __repr__(self) -> str:
        return (
            f"TreeNetwork(|N|={len(self._nodes)}, |C|={len(self._clients)}, "
            f"root={self._root!r}, lambda={self.load_factor():.3f})"
        )
