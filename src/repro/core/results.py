"""The unified result protocol: ``describe()`` / ``to_dict()`` / ``to_json()``.

Every user-facing result object in this package -- single-solve and bound
wrappers (:mod:`repro.session`), epoch-sequence results (:mod:`repro.api`)
and campaign results (:mod:`repro.experiments.harness`) -- implements the
same three-method protocol:

``describe()``
    A one-line human summary (what the CLI prints in prose mode).
``to_dict()``
    A JSON-compatible payload carrying a ``"type"`` tag plus every field
    needed to rebuild the result.  Nested solutions and trees are encoded
    through :mod:`repro.core.serialization`, so payloads round-trip.
``to_json()``
    ``json.dumps`` of the payload (what the CLI prints under ``--json``).

Payloads are *round-trippable*: :func:`result_from_dict` (or
:func:`result_from_json`) dispatches on the ``"type"`` tag and rebuilds the
original result object through the class's ``from_dict`` constructor.  New
result classes opt in with the :func:`register_result` decorator.

Float encoding
--------------

JSON has no ``inf``/``nan``.  Results encode non-finite floats through
:func:`encode_float` / :func:`decode_float`: ``math.inf`` becomes the
string ``"inf"`` (an infeasible bound), ``math.nan`` becomes ``"nan"``
(a metric that was never computed), and ``None`` stays ``None`` (a missing
value, e.g. an infeasible epoch's cost).  The mapping is bijective, so
round-trips preserve the distinction.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, Mapping, Optional, Type

__all__ = [
    "ResultBase",
    "register_result",
    "result_from_dict",
    "result_from_json",
    "encode_float",
    "decode_float",
]

#: ``"type"`` tag -> result class, filled by :func:`register_result`.
_RESULT_REGISTRY: Dict[str, Type["ResultBase"]] = {}

#: Modules defining registered result classes; imported lazily by
#: :func:`result_from_dict` so payloads written by one entry point can be
#: decoded by another without import-order luck.
_RESULT_MODULES = (
    "repro.session",
    "repro.api",
    "repro.experiments.harness",
    "repro.serving.pool",
    "repro.serving.loadgen",
    "repro.workloads.traces",
)


def encode_float(value: Optional[float]) -> Any:
    """JSON-safe encoding of an optional float (see module docstring)."""
    if value is None:
        return None
    value = float(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def decode_float(value: Any) -> Optional[float]:
    """Inverse of :func:`encode_float`."""
    if value is None:
        return None
    if value == "nan":
        return math.nan
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


class ResultBase:
    """Mixin implementing the shared half of the result protocol.

    Subclasses set the class attribute ``payload_type`` (the ``"type"`` tag
    of their payloads), implement ``describe()`` and ``to_dict()``, and --
    to be round-trippable through :func:`result_from_dict` -- provide a
    ``from_dict(payload)`` classmethod and register with
    :func:`register_result`.
    """

    #: ``"type"`` tag carried by the payloads of this result class.
    payload_type: str = ""

    def describe(self) -> str:
        """One-line human-readable summary."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible payload tagged with ``payload_type``."""
        raise NotImplementedError

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` payload serialised as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def _tagged(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Prepend the ``"type"`` tag to a payload (helper for subclasses)."""
        return {"type": type(self).payload_type, **payload}


def register_result(cls: Type[ResultBase]) -> Type[ResultBase]:
    """Class decorator registering ``cls`` for :func:`result_from_dict`."""
    if not cls.payload_type:
        raise ValueError(f"{cls.__name__} must define a payload_type tag")
    _RESULT_REGISTRY[cls.payload_type] = cls
    return cls


def result_from_dict(payload: Dict[str, Any]) -> ResultBase:
    """Rebuild a registered result object from a :meth:`to_dict` payload.

    Raises
    ------
    SerializationError
        When ``payload`` is not a mapping, carries no ``"type"`` tag, or
        carries a tag no registered result class claims.  The message names
        the offending tag and the known registry keys, so a consumer looking
        at a foreign payload knows what this build can decode.
    """
    from repro.core.exceptions import SerializationError

    if not isinstance(payload, Mapping):
        raise SerializationError(
            f"result payloads are JSON objects, got {type(payload).__name__}"
        )
    tag = payload.get("type")
    if tag is None:
        raise SerializationError(
            'result payload carries no "type" tag; '
            f"known tags: {sorted(_RESULT_REGISTRY)}"
        )
    if not isinstance(tag, str):
        # Guard before the registry lookup: an unhashable tag (a list, a
        # dict) would otherwise raise a bare TypeError past the
        # SerializationError contract.
        raise SerializationError(
            f'result payload "type" tag must be a string, '
            f"got {type(tag).__name__}"
        )
    if tag not in _RESULT_REGISTRY:
        import importlib

        for module in _RESULT_MODULES:
            importlib.import_module(module)
    cls = _RESULT_REGISTRY.get(tag)
    if cls is None:
        raise SerializationError(
            f"unknown result payload type {tag!r}; "
            f"known tags: {sorted(_RESULT_REGISTRY)}"
        )
    factory: Callable[[Dict[str, Any]], ResultBase] = cls.from_dict  # type: ignore[attr-defined]
    return factory(payload)


def result_from_json(text: str) -> ResultBase:
    """Rebuild a registered result object from a :meth:`to_json` string."""
    return result_from_dict(json.loads(text))
