"""Constraint checking for replica-placement solutions.

:func:`validate_solution` performs the full battery of checks a solution
must satisfy (paper Section 2.2.1 plus the access-policy semantics of
Section 3):

1. **structure** -- assigned servers are internal nodes of the tree, carry a
   replica, and lie on the client-to-root path of the clients they serve;
2. **coverage** -- every client has all of its ``r_i`` requests assigned;
3. **policy** -- single-server policies assign exactly one server per client,
   and *Closest* additionally forces that server to be the lowest replica
   ancestor of the client;
4. **server capacity** -- no replica processes more than ``W_j`` requests;
5. **QoS** -- every (client, server) pair with positive traffic respects the
   client's QoS bound (when the problem enforces QoS);
6. **link capacity** -- the flow through every link stays within its
   bandwidth (when the problem enforces bandwidth).

The result is a :class:`ValidationReport` collecting every violation found
(rather than stopping at the first one), which the tests and the experiment
harness rely on for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ReplicaPlacementProblem
from repro.core.solution import Solution
from repro.core.tree import NodeId

__all__ = ["ValidationReport", "validate_solution", "closest_server_map"]

#: Numerical tolerance used when comparing request amounts and capacities.
TOLERANCE = 1e-6


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_solution`.

    Attributes
    ----------
    valid:
        ``True`` when no violation was found.
    violations:
        Human-readable description of every violation.
    categories:
        The distinct categories of violations found (``"structure"``,
        ``"coverage"``, ``"policy"``, ``"capacity"``, ``"qos"``,
        ``"bandwidth"``).
    """

    valid: bool = True
    violations: List[str] = field(default_factory=list)
    categories: List[str] = field(default_factory=list)

    def record(self, category: str, message: str) -> None:
        """Register a violation."""
        self.valid = False
        self.violations.append(f"[{category}] {message}")
        if category not in self.categories:
            self.categories.append(category)

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.core.exceptions.InfeasibleError` when invalid."""
        if not self.valid:
            raise InfeasibleError(
                "solution fails validation:\n  " + "\n  ".join(self.violations)
            )

    def __bool__(self) -> bool:
        return self.valid

    def __repr__(self) -> str:
        status = "valid" if self.valid else f"INVALID ({len(self.violations)} violations)"
        return f"ValidationReport({status})"


def closest_server_map(tree, placement) -> dict:
    """Map every client to its lowest replica ancestor (the *Closest* server).

    Clients with no replica ancestor are absent from the result.
    """
    replicas = set(placement)
    servers = {}
    for client_id in tree.client_ids:
        for ancestor in tree.ancestors(client_id):
            if ancestor in replicas:
                servers[client_id] = ancestor
                break
    return servers


def validate_solution(
    problem: ReplicaPlacementProblem,
    solution: Solution,
    *,
    policy: Optional[Policy] = None,
    tolerance: float = TOLERANCE,
) -> ValidationReport:
    """Check ``solution`` against every constraint of ``problem``.

    Parameters
    ----------
    problem:
        The problem instance (tree, constraints, cost mode).
    solution:
        The candidate solution.
    policy:
        Policy whose semantics must be enforced; defaults to
        ``solution.policy``.
    tolerance:
        Numerical slack for amount comparisons.
    """
    tree = problem.tree
    policy = policy or solution.policy
    report = ValidationReport()
    placement = solution.placement
    assignment = solution.assignment

    # ------------------------------------------------------------------ #
    # 1. structural checks
    # ------------------------------------------------------------------ #
    for node_id in placement:
        if not tree.is_node(node_id):
            report.record("structure", f"replica placed on unknown node {node_id!r}")

    for (client_id, server_id), amount in assignment.items():
        if not tree.is_client(client_id):
            report.record("structure", f"assignment references unknown client {client_id!r}")
            continue
        if not tree.is_node(server_id):
            report.record("structure", f"assignment references unknown server {server_id!r}")
            continue
        if server_id not in placement:
            report.record(
                "structure",
                f"client {client_id!r} assigned to {server_id!r} which holds no replica",
            )
        if server_id not in tree.ancestors(client_id):
            report.record(
                "structure",
                f"server {server_id!r} is not an ancestor of client {client_id!r}; "
                "replicas can only serve clients of their own subtree",
            )

    # ------------------------------------------------------------------ #
    # 2. coverage
    # ------------------------------------------------------------------ #
    client_totals = assignment.client_totals()
    servers_by_client = assignment.servers_by_client()
    for client in tree.clients():
        assigned = client_totals.get(client.id, 0.0)
        if abs(assigned - client.requests) > tolerance:
            report.record(
                "coverage",
                f"client {client.id!r} issues {client.requests:g} requests but "
                f"{assigned:g} are assigned",
            )

    # ------------------------------------------------------------------ #
    # 3. access-policy semantics
    # ------------------------------------------------------------------ #
    if policy.single_server:
        for client in tree.clients():
            servers = servers_by_client.get(client.id, ())
            if client.requests > 0 and len(servers) > 1:
                report.record(
                    "policy",
                    f"{policy.value} is a single-server policy but client "
                    f"{client.id!r} is served by {len(servers)} servers "
                    f"{sorted(map(repr, servers))}",
                )

    if policy is Policy.CLOSEST:
        forced = closest_server_map(tree, placement)
        for client in tree.clients():
            if client.requests <= 0:
                continue
            servers = servers_by_client.get(client.id, ())
            if not servers:
                continue  # already reported as a coverage violation
            expected = forced.get(client.id)
            actual = servers[0]
            if expected is None:
                report.record(
                    "policy",
                    f"client {client.id!r} has no replica ancestor under the "
                    "Closest policy",
                )
            elif actual != expected:
                report.record(
                    "policy",
                    f"Closest policy forces client {client.id!r} onto "
                    f"{expected!r} (its lowest replica ancestor) but it is "
                    f"served by {actual!r}",
                )

    # ------------------------------------------------------------------ #
    # 4. server capacities
    # ------------------------------------------------------------------ #
    for server_id, load in assignment.server_loads().items():
        if not tree.is_node(server_id):
            continue  # structural violation already recorded
        capacity = problem.capacity(server_id)
        if load > capacity + tolerance:
            report.record(
                "capacity",
                f"server {server_id!r} processes {load:g} requests, capacity {capacity:g}",
            )

    # ------------------------------------------------------------------ #
    # 5. QoS
    # ------------------------------------------------------------------ #
    if problem.constraints.has_qos:
        for (client_id, server_id), amount in assignment.items():
            if amount <= tolerance:
                continue
            if not tree.is_client(client_id) or not tree.is_node(server_id):
                continue
            if server_id not in tree.ancestors(client_id):
                continue
            if not problem.qos_satisfied(client_id, server_id):
                metric = problem.constraints.qos_metric(tree, client_id, server_id)
                report.record(
                    "qos",
                    f"client {client_id!r} served by {server_id!r} at QoS metric "
                    f"{metric:g} > bound {tree.client(client_id).qos:g}",
                )

    # ------------------------------------------------------------------ #
    # 6. link capacities
    # ------------------------------------------------------------------ #
    if problem.constraints.enforce_bandwidth:
        flows = assignment.link_flows(tree)
        for (child, parent), flow in flows.items():
            bandwidth = tree.link(child).bandwidth
            if flow > bandwidth + tolerance:
                report.record(
                    "bandwidth",
                    f"link {child!r}->{parent!r} carries {flow:g} requests, "
                    f"bandwidth {bandwidth:g}",
                )

    return report
