"""Placements, request assignments and complete solutions.

A solution to a Replica Placement instance has two layers:

* a :class:`Placement` -- the set ``R`` of internal nodes equipped with a
  replica;
* an :class:`Assignment` -- the quantities ``r_{i,s}``: how many requests of
  client ``i`` are processed by each server ``s`` (the paper's
  ``Servers(i)`` sets with their request split).

:class:`Solution` bundles both with the access policy under which the
assignment was produced and bookkeeping about which algorithm produced it.
Constraint checking lives in :mod:`repro.core.validation`; objective values
in :mod:`repro.core.costs`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.core.exceptions import PolicyViolationError, TreeStructureError
from repro.core.policies import Policy
from repro.core.tree import NodeId, TreeNetwork

__all__ = ["Placement", "Assignment", "Solution"]


@dataclass(frozen=True)
class Placement:
    """The set ``R`` of internal nodes holding a replica."""

    replicas: FrozenSet[NodeId]

    def __init__(self, replicas: Iterable[NodeId]):
        object.__setattr__(self, "replicas", frozenset(replicas))

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self.replicas

    def __iter__(self):
        return iter(self.replicas)

    def __len__(self) -> int:
        return len(self.replicas)

    def __or__(self, other: "Placement") -> "Placement":
        return Placement(self.replicas | other.replicas)

    def sorted(self) -> Tuple[NodeId, ...]:
        """Replica identifiers in a deterministic (string-sorted) order."""
        return tuple(sorted(self.replicas, key=repr))

    def restricted_to(self, tree: TreeNetwork) -> "Placement":
        """Placement restricted to nodes that exist in ``tree``.

        Used when transplanting a placement onto a re-costed copy of the same
        topology.
        """
        return Placement(r for r in self.replicas if tree.is_node(r))


class Assignment:
    """The request split ``r_{i,s}``: requests of client ``i`` served by ``s``.

    The mapping is stored sparsely: only strictly positive amounts are kept.
    Amounts may be fractional (the LP relaxation produces fractional
    assignments); integral algorithms only ever store integers.
    """

    __slots__ = ("_amounts",)

    def __init__(self, amounts: Optional[Mapping[Tuple[NodeId, NodeId], float]] = None):
        self._amounts: Dict[Tuple[NodeId, NodeId], float] = {}
        if amounts:
            for (client, server), value in amounts.items():
                if value < 0:
                    raise PolicyViolationError(
                        f"negative request amount {value} for client {client!r} "
                        f"on server {server!r}"
                    )
                if value > 0:
                    self._amounts[(client, server)] = float(value)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def single_server(cls, servers: Mapping[NodeId, NodeId], tree: TreeNetwork) -> "Assignment":
        """Build an assignment from a ``client -> server`` map (single-server policies)."""
        amounts = {}
        for client_id, server_id in servers.items():
            amounts[(client_id, server_id)] = tree.client(client_id).requests
        return cls(amounts)

    def copy(self) -> "Assignment":
        """Return an independent copy of this assignment."""
        return Assignment(dict(self._amounts))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def amount(self, client_id: NodeId, server_id: NodeId) -> float:
        """Requests of ``client_id`` served by ``server_id`` (0 when unassigned)."""
        return self._amounts.get((client_id, server_id), 0.0)

    def items(self):
        """Iterate over ``((client, server), amount)`` pairs with positive amount."""
        return self._amounts.items()

    def servers_of(self, client_id: NodeId) -> Tuple[NodeId, ...]:
        """The paper's ``Servers(i)``: replicas processing at least one request of ``i``."""
        return tuple(s for (c, s) in self._amounts if c == client_id)

    def clients_of(self, server_id: NodeId) -> Tuple[NodeId, ...]:
        """Clients having at least one request processed by ``server_id``."""
        return tuple(c for (c, s) in self._amounts if s == server_id)

    def client_total(self, client_id: NodeId) -> float:
        """Total requests of ``client_id`` that are assigned to some server."""
        return sum(v for (c, _s), v in self._amounts.items() if c == client_id)

    def client_totals(self) -> Dict[NodeId, float]:
        """Assigned totals of every client with at least one assignment.

        Single pass over the amounts; use this instead of per-client
        :meth:`client_total` calls when walking all clients (validation,
        reporting) to avoid a quadratic scan.
        """
        totals: Dict[NodeId, float] = {}
        for (client, _server), value in self._amounts.items():
            totals[client] = totals.get(client, 0.0) + value
        return totals

    def servers_by_client(self) -> Dict[NodeId, Tuple[NodeId, ...]]:
        """The ``Servers(i)`` tuples of every assigned client, in one pass.

        Per-client server order matches :meth:`servers_of` (assignment
        insertion order).
        """
        servers: Dict[NodeId, List[NodeId]] = {}
        for (client, server) in self._amounts:
            servers.setdefault(client, []).append(server)
        return {client: tuple(entries) for client, entries in servers.items()}

    def server_load(self, server_id: NodeId) -> float:
        """Total requests processed by ``server_id``."""
        return sum(v for (_c, s), v in self._amounts.items() if s == server_id)

    def server_loads(self) -> Dict[NodeId, float]:
        """Mapping of every used server to its total load."""
        loads: Dict[NodeId, float] = {}
        for (_client, server), value in self._amounts.items():
            loads[server] = loads.get(server, 0.0) + value
        return loads

    def used_servers(self) -> FrozenSet[NodeId]:
        """Servers processing at least one request."""
        return frozenset(s for (_c, s) in self._amounts)

    def link_flows(self, tree: TreeNetwork) -> Dict[Tuple[NodeId, NodeId], float]:
        """Flow of requests through every link implied by this assignment.

        A request of client ``i`` served by ancestor ``s`` traverses every
        link on ``path[i -> s]``.
        """
        flows: Dict[Tuple[NodeId, NodeId], float] = {}
        for (client, server), value in self._amounts.items():
            for link in tree.path_links(client, server):
                flows[link.key] = flows.get(link.key, 0.0) + value
        return flows

    def is_integral(self, tolerance: float = 1e-9) -> bool:
        """``True`` when every assigned amount is (numerically) an integer."""
        return all(
            abs(value - round(value)) <= tolerance for value in self._amounts.values()
        )

    def total_assigned(self) -> float:
        """Total number of assigned requests across all clients."""
        return sum(self._amounts.values())

    def __len__(self) -> int:
        return len(self._amounts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self._amounts == other._amounts

    def __repr__(self) -> str:
        return f"Assignment({len(self._amounts)} client/server pairs, total={self.total_assigned():g})"


@dataclass(frozen=True)
class Solution:
    """A complete answer to a Replica Placement instance.

    Parameters
    ----------
    placement:
        The replica set ``R``.
    assignment:
        The request split ``r_{i,s}``.
    policy:
        The access policy under which the assignment is claimed to be valid.
    algorithm:
        Name of the algorithm/heuristic that produced the solution.
    metadata:
        Free-form extra information (iterations, solver statistics, ...).
    """

    placement: Placement
    assignment: Assignment
    policy: Policy
    algorithm: str = "unknown"
    metadata: Mapping[str, object] = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------ #
    def cost(self, problem) -> float:
        """Total storage cost of the placement under ``problem``'s cost mode."""
        return sum(problem.storage_cost(node_id) for node_id in self.placement)

    def replica_count(self) -> int:
        """Number of replicas placed."""
        return len(self.placement)

    def server_utilisation(self, tree: TreeNetwork) -> Dict[NodeId, float]:
        """Fraction of each replica's capacity actually used (0 for idle replicas)."""
        loads = self.assignment.server_loads()
        result: Dict[NodeId, float] = {}
        for node_id in self.placement:
            capacity = tree.node(node_id).capacity
            load = loads.get(node_id, 0.0)
            result[node_id] = load / capacity if capacity > 0 else math.inf
        return result

    def with_algorithm(self, algorithm: str) -> "Solution":
        """Return a copy of this solution labelled with a different algorithm name."""
        return Solution(
            placement=self.placement,
            assignment=self.assignment,
            policy=self.policy,
            algorithm=algorithm,
            metadata=dict(self.metadata),
        )

    def summary(self, problem) -> str:
        """One-line report used by the CLI and the examples."""
        return (
            f"[{self.algorithm}] policy={self.policy.value} "
            f"replicas={self.replica_count()} cost={self.cost(problem):g}"
        )

    def __repr__(self) -> str:
        return (
            f"Solution(algorithm={self.algorithm!r}, policy={self.policy.value}, "
            f"replicas={sorted(map(repr, self.placement.replicas))})"
        )
