"""Dense integer indexing of a :class:`~repro.core.tree.TreeNetwork`.

:class:`TreeIndex` interns the hashable node and client identifiers of a
tree into dense integer ranges and precomputes the contiguous layouts every
hot path of the placement engine needs:

* internal nodes laid out in **DFS pre-order** (children in link insertion
  order), so the internal nodes of ``subtree(j)`` form the contiguous span
  ``j .. node_span_end[j]``;
* clients laid out in **DFS leaf order** -- provably the exact order of
  ``TreeNetwork.subtree_clients(root)`` -- so the clients of ``subtree(j)``
  form the contiguous span ``client_span_start[j] .. client_span_end[j]``
  *and* enumerate in the same order as the dict-based tree queries;
* parent / depth / root-latency vectors for both populations and per-client
  request vectors;
* ready-to-``copy()`` dict templates for the engine's mutable state
  (``remaining`` / ``inreq`` / ``residual``), so building a solver state
  costs three C-level dict copies instead of per-id dict comprehensions.

Scalar vectors are plain Python lists/tuples: the engine's span scans are
dominated by element access from interpreted code, where list indexing
beats both dict lookups (no hashing) and numpy arrays (no per-element C
dispatch / unboxing).  Ancestor chains are shared with the tree's own
cached tuples, so indexing a tree costs one DFS plus a handful of flat
passes.

The index is immutable, built once per tree (``TreeIndex.for_tree`` caches
it on the tree instance) and shared by every state object built on the same
tree, which is what makes batch solving over many scenarios cheap.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.core.exceptions import TreeStructureError
from repro.core.tree import NodeId, TreeNetwork

__all__ = ["TreeIndex", "supports_qos_thresholds"]


def supports_qos_thresholds(constraints) -> bool:
    """Can ``constraints``' eligibility be captured by per-client depth
    thresholds?

    True for the exact built-in
    :class:`~repro.core.constraints.ConstraintSet` with an active QoS mode
    (hop distance and cumulative latency are monotone toward the root) and
    for any subclass declaring a truthy ``monotone_path_metric`` (e.g. a
    :class:`~repro.core.constraints.ClassedConstraintSet` whose class
    weights are all non-negative).  Everything else -- notably subclasses
    with non-monotone metrics -- must keep per-pair ``qos_satisfied``
    filtering: one depth threshold cannot represent their eligible sets.
    """
    from repro.core.constraints import ConstraintSet, QoSMode

    if type(constraints) is ConstraintSet:
        return constraints.qos_mode in (QoSMode.DISTANCE, QoSMode.LATENCY)
    return bool(getattr(constraints, "monotone_path_metric", False))


class TreeIndex:
    """Flat, interned structural view of an immutable :class:`TreeNetwork`."""

    __slots__ = (
        "tree",
        "n_nodes",
        "n_clients",
        "height",
        "node_order",
        "node_pos",
        "client_order",
        "client_pos",
        "node_parent",
        "node_depth",
        "client_parent",
        "client_depth",
        "node_span_end",
        "client_span_start",
        "client_span_end",
        "node_ancestors",
        "client_ancestors",
        "client_requests",
        "client_repr",
        "uplink_comm",
        "node_root_latency",
        "client_root_latency",
        "remaining_template",
        "inreq_template",
        "residual_template",
        "qos_threshold_cache",
        "_np_cache",
    )

    def __init__(self, tree: TreeNetwork):
        self.tree = tree
        parent_map = tree._parent
        children_map = tree._children
        depth_map = tree._depth
        clients_map = tree._clients
        nodes_map = tree._nodes
        ancestors_map = tree._ancestors
        n_nodes = len(nodes_map)
        n_clients = len(clients_map)
        self.n_nodes = n_nodes
        self.n_clients = n_clients
        self.height = max(depth_map.values()) if depth_map else 0

        # ---- DFS pre-order over internal nodes, DFS leaf order over clients.
        # Children are visited in link insertion order, which makes the client
        # layout identical to TreeNetwork.subtree_clients(root): that tuple is
        # built as the concatenation of the children's tuples in the same
        # insertion order.
        node_order: List[NodeId] = []
        client_order: List[NodeId] = []
        node_pos: Dict[NodeId, int] = {}
        client_pos: Dict[NodeId, int] = {}
        node_span_end: List[int] = [0] * n_nodes
        client_span_start: List[int] = [0] * n_nodes
        client_span_end: List[int] = [0] * n_nodes

        # Iterative DFS carrying explicit "exit" frames to close the spans.
        stack: List[Tuple[NodeId, bool]] = [(tree.root, False)]
        while stack:
            element, leaving = stack.pop()
            if leaving:
                index = node_pos[element]
                node_span_end[index] = len(node_order)
                client_span_end[index] = len(client_order)
                continue
            if element in clients_map:
                client_pos[element] = len(client_order)
                client_order.append(element)
                continue
            index = len(node_order)
            node_pos[element] = index
            node_order.append(element)
            client_span_start[index] = len(client_order)
            stack.append((element, True))
            children = children_map.get(element)
            if children:
                stack.extend((child, False) for child in reversed(children))

        self.node_order = tuple(node_order)
        self.client_order = tuple(client_order)
        self.node_pos = node_pos
        self.client_pos = client_pos
        self.node_span_end = node_span_end
        self.client_span_start = client_span_start
        self.client_span_end = client_span_end

        # ---- parents and depths ------------------------------------------ #
        root = tree.root
        self.node_parent = [
            node_pos[parent_map[nid]] if nid != root else -1 for nid in node_order
        ]
        self.node_depth = list(map(depth_map.__getitem__, node_order))
        self.client_parent = [node_pos[parent_map[cid]] for cid in client_order]
        self.client_depth = list(map(depth_map.__getitem__, client_order))

        # ---- ancestor chains: share the tree's cached id tuples ---------- #
        self.node_ancestors = tuple(map(ancestors_map.__getitem__, node_order))
        self.client_ancestors = tuple(map(ancestors_map.__getitem__, client_order))

        # ---- workload vectors -------------------------------------------- #
        self.client_requests = [
            float(clients_map[cid].requests) for cid in client_order
        ]
        #: repr() of every client id, for deterministic tie-breaking that
        #: matches the dict engine's ``repr`` sort keys.
        self.client_repr = tuple(map(repr, client_order))

        # ---- uplink communication times and cumulative root latencies ----- #
        self.uplink_comm = {
            child: link.comm_time for (child, _parent), link in tree._links.items()
        }
        uplink = self.uplink_comm
        node_lat: Dict[NodeId, float] = {root: 0.0}
        for nid in node_order:  # pre-order: parents before children
            if nid != root:
                node_lat[nid] = node_lat[parent_map[nid]] + uplink[nid]
        self.node_root_latency = node_lat
        self.client_root_latency = {
            cid: node_lat[parent_map[cid]] + uplink[cid] for cid in client_order
        }

        # ---- dict templates for the engine's mutable state ---------------- #
        self.remaining_template = {
            cid: value for cid, value in zip(client_order, self.client_requests)
        }
        subtree_requests = tree._subtree_requests
        self.inreq_template = {
            nid: float(subtree_requests[nid]) for nid in node_order
        }
        self.residual_template = {
            nid: float(nodes_map[nid].capacity) for nid in node_order
        }

        #: memoised per-client QoS depth thresholds, keyed by QoS mode
        #: (filled lazily by the fast engine; bounds live on the tree, so a
        #: mode fully determines the thresholds).
        self.qos_threshold_cache: Dict[object, List[int]] = {}

        #: lazily-built *structural* numpy mirrors (no workload data), shared
        #: verbatim by epoch forks; used by the vectorised LP assembly.
        self._np_cache: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # construction / caching
    # ------------------------------------------------------------------ #
    @classmethod
    def for_tree(cls, tree: TreeNetwork) -> "TreeIndex":
        """Return the (cached) index of ``tree``, building it on first use.

        Trees forked through :meth:`TreeNetwork.with_requests` remember their
        base tree; when an ancestor along that fork chain carries an index,
        the fork's index is *patched* from it (structural arrays shared,
        workload vectors recomputed for the union of the chain's changed
        clients) instead of being rebuilt with a full DFS.  Never-indexed
        intermediate forks -- e.g. quiet epochs the incremental resolver
        reused without solving -- are walked through, so a low-churn epoch
        sequence keeps patching whatever subset of epochs actually gets
        solved.  The patched index is identical to a fresh build -- the
        dynamic-workload tests pin the two to each other field by field.

        The consumed ``_patch_source`` link is cleared afterwards: once a
        tree has its own index the back-references (and the ancestor trees
        they keep alive) serve no further purpose, which keeps long-running
        epoch chains from accumulating their whole history in memory.
        """
        cached = tree._index_cache
        if cached is None:
            source = tree._patch_source
            changed: set = set()
            while source is not None:
                base, base_changed = source
                changed.update(base_changed)
                if base._index_cache is not None:
                    break
                source = base._patch_source
            if source is not None:
                cached = base._index_cache.patched(tree, changed)
            else:
                cached = cls(tree)
            tree._index_cache = cached
            tree._patch_source = None
        return cached

    def patched(self, tree: TreeNetwork, changed_clients: Iterable[NodeId]) -> "TreeIndex":
        """Index of an epoch fork of this index's tree (same topology).

        Structural layouts (orders, spans, ancestor chains, depths, link
        latencies, repr keys, QoS threshold memo) are shared with this index;
        only the request-dependent vectors and dict templates are recomputed
        from ``tree``.  ``changed_clients`` are the ids whose rate differs
        from this index's tree (an empty iterable shares everything).
        """
        fork = TreeIndex.__new__(TreeIndex)
        fork.tree = tree
        fork.n_nodes = self.n_nodes
        fork.n_clients = self.n_clients
        fork.height = self.height
        fork.node_order = self.node_order
        fork.node_pos = self.node_pos
        fork.client_order = self.client_order
        fork.client_pos = self.client_pos
        fork.node_parent = self.node_parent
        fork.node_depth = self.node_depth
        fork.client_parent = self.client_parent
        fork.client_depth = self.client_depth
        fork.node_span_end = self.node_span_end
        fork.client_span_start = self.client_span_start
        fork.client_span_end = self.client_span_end
        fork.node_ancestors = self.node_ancestors
        fork.client_ancestors = self.client_ancestors
        fork.client_repr = self.client_repr
        fork.uplink_comm = self.uplink_comm
        fork.node_root_latency = self.node_root_latency
        fork.client_root_latency = self.client_root_latency
        fork.residual_template = self.residual_template
        #: thresholds depend on QoS bounds / depths / comm times only, all of
        #: which an epoch fork leaves untouched -- share the memo.
        fork.qos_threshold_cache = self.qos_threshold_cache
        #: structural-only by construction, so epoch forks share the memo.
        fork._np_cache = self._np_cache

        changed = tuple(changed_clients)
        if not changed:
            fork.client_requests = self.client_requests
            fork.remaining_template = self.remaining_template
            fork.inreq_template = self.inreq_template
            return fork

        clients_map = tree._clients
        client_pos = self.client_pos
        requests_vec = list(self.client_requests)
        remaining = dict(self.remaining_template)
        for client_id in changed:
            value = float(clients_map[client_id].requests)
            requests_vec[client_pos[client_id]] = value
            remaining[client_id] = value
        fork.client_requests = requests_vec
        fork.remaining_template = remaining
        # The fork's subtree sums were re-accumulated in fresh-build order by
        # with_requests, so reading them back gives the same floats a full
        # rebuild would produce.
        subtree_requests = tree._subtree_requests
        fork.inreq_template = {
            nid: float(subtree_requests[nid]) for nid in self.node_order
        }
        return fork

    @classmethod
    def sliced(cls, shard) -> "TreeIndex":
        """Index of one :class:`~repro.core.partition.Shard` sub-tree.

        Shard sub-trees preserve the global link insertion order, so the
        shard's internal nodes and clients are *contiguous DFS spans* of the
        global layout.  When the global tree already carries an index, this
        constructor slices those spans out and re-bases positions and depths
        in O(|shard|) -- no whole-tree DFS.  When it does not (the sharded
        solve path never builds one), the index is built directly from the
        shard sub-tree, which is still O(|shard|): the full dense layout of
        the global tree is never materialised either way.

        The result is bit-identical to ``TreeIndex(shard.problem.tree)``
        (pinned by the sharding test suite) and is cached on the shard tree
        like :meth:`for_tree` would.
        """
        tree = shard.problem.tree
        cached = tree._index_cache
        if cached is not None:
            return cached
        source_tree = shard.source.tree
        source = source_tree._index_cache
        if source is None or shard.root not in source.node_pos:
            index = cls(tree)
        else:
            index = source._slice_span(tree, shard.root)
        tree._index_cache = index
        return index

    def _slice_span(self, tree: TreeNetwork, root: NodeId) -> "TreeIndex":
        """Re-base the contiguous spans of ``subtree(root)`` onto ``tree``.

        ``tree`` must be the shard sub-tree re-rooted at ``root`` with the
        global link order preserved (what ``partition_problem`` emits), so
        its DFS layout equals this index's span of ``root``.
        """
        sliced = TreeIndex.__new__(TreeIndex)
        sliced.tree = tree
        i0 = self.node_pos[root]
        i1 = self.node_span_end[i0]
        c0 = self.client_span_start[i0]
        c1 = self.client_span_end[i0]
        depth0 = self.node_depth[i0]
        sliced.n_nodes = i1 - i0
        sliced.n_clients = c1 - c0
        node_order = self.node_order[i0:i1]
        client_order = self.client_order[c0:c1]
        sliced.node_order = node_order
        sliced.client_order = client_order
        sliced.node_pos = {nid: i for i, nid in enumerate(node_order)}
        sliced.client_pos = {cid: i for i, cid in enumerate(client_order)}
        sliced.node_parent = [p - i0 for p in self.node_parent[i0:i1]]
        sliced.node_parent[0] = -1  # the shard root has no parent link
        sliced.node_depth = [d - depth0 for d in self.node_depth[i0:i1]]
        sliced.client_parent = [p - i0 for p in self.client_parent[c0:c1]]
        sliced.client_depth = [d - depth0 for d in self.client_depth[c0:c1]]
        sliced.height = max(tree._depth.values()) if tree._depth else 0
        sliced.node_span_end = [e - i0 for e in self.node_span_end[i0:i1]]
        sliced.client_span_start = [s - c0 for s in self.client_span_start[i0:i1]]
        sliced.client_span_end = [e - c0 for e in self.client_span_end[i0:i1]]
        # Ancestor chains are shard-local (they stop at the shard root), so
        # they come from the shard tree's own cache, exactly like __init__.
        ancestors_map = tree._ancestors
        sliced.node_ancestors = tuple(map(ancestors_map.__getitem__, node_order))
        sliced.client_ancestors = tuple(map(ancestors_map.__getitem__, client_order))
        clients_map = tree._clients
        sliced.client_requests = [
            float(clients_map[cid].requests) for cid in client_order
        ]
        sliced.client_repr = tuple(map(repr, client_order))
        sliced.uplink_comm = {
            child: link.comm_time for (child, _parent), link in tree._links.items()
        }
        # Root latencies restart at the shard root; accumulate in pre-order
        # like __init__ so the floats match a fresh build bit for bit
        # (subtracting the global root latency would not).
        parent_map = tree._parent
        uplink = sliced.uplink_comm
        node_lat: Dict[NodeId, float] = {root: 0.0}
        for nid in node_order:
            if nid != root:
                node_lat[nid] = node_lat[parent_map[nid]] + uplink[nid]
        sliced.node_root_latency = node_lat
        sliced.client_root_latency = {
            cid: node_lat[parent_map[cid]] + uplink[cid] for cid in client_order
        }
        sliced.remaining_template = {
            cid: value for cid, value in zip(client_order, sliced.client_requests)
        }
        subtree_requests = tree._subtree_requests
        sliced.inreq_template = {
            nid: float(subtree_requests[nid]) for nid in node_order
        }
        nodes_map = tree._nodes
        sliced.residual_template = {
            nid: float(nodes_map[nid].capacity) for nid in node_order
        }
        # Thresholds depend on shard-local depths; the memo starts empty.
        sliced.qos_threshold_cache = {}
        sliced._np_cache = {}
        return sliced

    # ------------------------------------------------------------------ #
    # QoS depth thresholds
    # ------------------------------------------------------------------ #
    def qos_depth_thresholds(self, problem) -> List[int]:
        """Per-client minimal eligible server depth under ``problem``'s QoS.

        Both built-in QoS metrics (hop distance, cumulative latency) are
        monotone non-decreasing towards the root, so the eligible ancestors
        of a client form a bottom-up prefix of its chain: an ancestor ``a``
        is eligible iff ``depth(a) >= threshold``.  The comparisons below
        reproduce ``problem.qos_satisfied`` operation for operation (hop
        counts as float subtraction, latencies accumulated link by link in
        path order), so boundary cases agree bit-for-bit.  Client bounds
        live on the tree, so results are memoised per QoS mode.

        Defined for the exact built-in :class:`ConstraintSet` and for any
        subclass that declares a monotone path metric (truthy
        ``monotone_path_metric``, e.g. a
        :class:`~repro.core.constraints.ClassedConstraintSet` with
        non-negative class weights) -- see
        :func:`supports_qos_thresholds`.  A subclass with a non-monotone
        metric cannot be represented by a single depth threshold, so
        callers must keep per-pair ``qos_satisfied`` filtering for those
        (raises ``ValueError``).  Built-in modes memoise per QoS mode;
        subclasses memoise per constraints object (frozen and hashable).
        """
        from repro.core.constraints import ConstraintSet

        constraints = problem.constraints
        if not supports_qos_thresholds(constraints):
            raise ValueError(
                "qos_depth_thresholds only supports the built-in "
                "distance/latency constraint set and monotone subclasses; "
                "filter with problem.qos_satisfied instead"
            )
        builtin = type(constraints) is ConstraintSet
        key: object = constraints.qos_mode if builtin else constraints
        thresholds = self.qos_threshold_cache.get(key)
        if thresholds is not None:
            return thresholds

        tree = self.tree
        depth_map = tree._depth
        thresholds = []
        if not builtin:
            # Generic monotone subclass walk: the subclass yields its own
            # (ancestor, score) accumulation, reproduced operation for
            # operation by its qos_metric so boundary cases agree
            # bit-for-bit with the per-pair fallback.
            scores_of = getattr(constraints, "iter_ancestor_scores", None)
            for ci, client_id in enumerate(self.client_order):
                bound = tree._clients[client_id].qos
                best = self.client_depth[ci]  # sentinel: nothing eligible
                if scores_of is not None:
                    pairs = scores_of(tree, client_id)
                else:  # monotone subclass without the bulk iterator
                    pairs = (
                        (a, constraints.qos_metric(tree, client_id, a))
                        for a in self.client_ancestors[ci]
                    )
                for ancestor, score in pairs:
                    if score <= bound:
                        best = depth_map[ancestor]
                    else:
                        break  # monotone metric: everything above fails
                thresholds.append(best)
            self.qos_threshold_cache[key] = thresholds
            return thresholds
        from repro.core.constraints import QoSMode

        by_distance = constraints.qos_mode is QoSMode.DISTANCE
        uplink = self.uplink_comm
        for ci, client_id in enumerate(self.client_order):
            bound = tree._clients[client_id].qos
            client_depth = self.client_depth[ci]
            best = client_depth  # sentinel: nothing eligible
            if by_distance:
                for ancestor in self.client_ancestors[ci]:
                    depth = depth_map[ancestor]
                    if float(client_depth - depth) <= bound:
                        best = depth
                    else:
                        break  # monotone metric: everything above fails
            else:
                latency = 0.0
                comm = uplink[client_id]
                for ancestor in self.client_ancestors[ci]:
                    latency += comm
                    if latency <= bound:
                        best = depth_map[ancestor]
                    else:
                        break
                    comm = uplink.get(ancestor, 0.0)
            thresholds.append(best)
        self.qos_threshold_cache[key] = thresholds
        return thresholds

    # ------------------------------------------------------------------ #
    # bulk structural views
    # ------------------------------------------------------------------ #
    def client_ancestor_positions(self):
        """Flat dense-position ancestor chains: ``(positions, offsets)``.

        ``positions`` concatenates every client's bottom-up ancestor chain
        translated to dense node positions; client ``c``'s chain is the
        slice ``positions[offsets[c] : offsets[c + 1]]``.  Purely
        structural, hence built once per topology and shared by epoch forks
        (used by the vectorised LP assembly to gather QoS-eligible pair
        columns in bulk).
        """
        cached = self._np_cache.get("client_ancestor_positions")
        if cached is None:
            import numpy as np

            node_pos = self.node_pos
            lengths = [len(chain) for chain in self.client_ancestors]
            offsets = np.zeros(self.n_clients + 1, dtype=np.intp)
            np.cumsum(lengths, out=offsets[1:])
            flat = np.fromiter(
                (node_pos[nid] for chain in self.client_ancestors for nid in chain),
                dtype=np.intp,
                count=int(offsets[-1]),
            )
            cached = (flat, offsets)
            self._np_cache["client_ancestor_positions"] = cached
        return cached

    # ------------------------------------------------------------------ #
    # id <-> index translation
    # ------------------------------------------------------------------ #
    def node_index(self, node_id: NodeId) -> int:
        """Dense pre-order index of an internal node."""
        try:
            return self.node_pos[node_id]
        except KeyError:
            raise TreeStructureError(f"unknown internal node {node_id!r}") from None

    def client_index(self, client_id: NodeId) -> int:
        """Dense layout position of a client."""
        try:
            return self.client_pos[client_id]
        except KeyError:
            raise TreeStructureError(f"unknown client {client_id!r}") from None

    # ------------------------------------------------------------------ #
    # structural queries (mainly used by the cross-validation tests)
    # ------------------------------------------------------------------ #
    def parent_of(self, element_id: NodeId):
        """Identifier of the parent of an element (``None`` for the root)."""
        if element_id in self.node_pos:
            parent = self.node_parent[self.node_pos[element_id]]
            return None if parent < 0 else self.node_order[parent]
        return self.node_order[self.client_parent[self.client_index(element_id)]]

    def depth_of(self, element_id: NodeId) -> int:
        """Number of links between an element and the root."""
        if element_id in self.node_pos:
            return self.node_depth[self.node_pos[element_id]]
        return self.client_depth[self.client_index(element_id)]

    def ancestors_of(self, element_id: NodeId) -> Tuple[NodeId, ...]:
        """Bottom-up ancestor identifiers, mirroring ``TreeNetwork.ancestors``."""
        if element_id in self.node_pos:
            return self.node_ancestors[self.node_pos[element_id]]
        return self.client_ancestors[self.client_index(element_id)]

    def subtree_clients_of(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Clients of ``subtree(node_id)`` via the contiguous span."""
        index = self.node_index(node_id)
        return self.client_order[self.client_span_start[index] : self.client_span_end[index]]

    def subtree_nodes_of(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Internal nodes of ``subtree(node_id)`` via the contiguous span."""
        index = self.node_index(node_id)
        return self.node_order[index : self.node_span_end[index]]

    def subtree_requests_of(self, node_id: NodeId) -> float:
        """Total requests issued inside ``subtree(node_id)``."""
        if node_id not in self.inreq_template:
            raise TreeStructureError(f"unknown internal node {node_id!r}")
        return self.inreq_template[node_id]

    def root_latency_of(self, element_id: NodeId) -> float:
        """Sum of link communication times from an element up to the root."""
        if element_id in self.node_root_latency:
            return self.node_root_latency[element_id]
        if element_id in self.client_root_latency:
            return self.client_root_latency[element_id]
        raise TreeStructureError(f"unknown element {element_id!r}")

    def __repr__(self) -> str:
        return f"TreeIndex(|N|={self.n_nodes}, |C|={self.n_clients})"
