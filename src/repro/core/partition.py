"""Partitioning a replica-placement problem into subtree shards.

The whole-tree algorithms index and solve the entire distribution tree at
once; at the 10^5-10^6 client scale of the ROADMAP north star, that single
dense pass is the wall.  This module cuts the tree at a small antichain of
high-level internal nodes -- the **cut** -- and rewrites one global
:class:`~repro.core.problem.ReplicaPlacementProblem` as:

* one **shard** per cut node: the full subtree hanging under it, re-rooted
  at the cut node, carrying its clients' *global* request rates and QoS
  bounds (within a shard, every client-to-ancestor path is identical to the
  global tree, so the global bounds keep their exact meaning);
* one **residual** problem: the global root plus everything not under any
  cut node (the region the cut "looks up into").

The emitted :class:`ShardPlan` also summarises what cut-reconciliation
needs: per-shard aggregate demand, capacity and residual capacity, and the
**boundary QoS budget** of every shard client -- the slack a client's
request still has left when it crosses the cut, i.e. its global bound minus
the metric from the client to the shard root.  A request that must travel
above the cut consumes the cut link and then spends from that budget in the
residual region, which is exactly how
:mod:`repro.algorithms.sharded` re-homes overflow at the quotient tree.

Cut selection supports three forms (mirroring the ROADMAP sharding item):
an explicit node list, a target shard count (greedy descent by subtree
request mass), or the degenerate ``shards=1`` whole-tree case, which every
caller treats as "do not shard" so the classic path stays bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.constraints import QoSMode
from repro.core.problem import ReplicaPlacementProblem
from repro.core.tree import Link, NodeId, TreeNetwork

__all__ = ["Shard", "ShardPlan", "choose_cut", "partition_problem"]

#: ``shards=`` specifications accepted across the API surface: a target
#: shard count or an explicit sequence of cut node ids.
ShardSpec = Union[int, Sequence[NodeId]]


@dataclass(frozen=True)
class Shard:
    """One subtree sub-problem of a :class:`ShardPlan`.

    Attributes
    ----------
    index:
        Position of this shard in ``plan.shards``.
    root:
        The cut node: root of the shard's sub-tree.
    parent:
        The cut node's parent in the *global* tree (where the cut link
        re-attaches overflow during reconciliation).
    problem:
        The shard's standalone :class:`ReplicaPlacementProblem`.
    source:
        The global problem this shard was cut from.
    demand, capacity:
        Aggregate client requests inside the shard and aggregate server
        capacity of its internal nodes.
    boundary_budgets:
        Per-client QoS slack remaining *at the shard root* (global bound
        minus the client-to-root metric), for clients with finite bounds
        under a QoS-enforcing constraint set.  Clients absent from the
        mapping have an unbounded budget.
    """

    index: int
    root: NodeId
    parent: NodeId
    problem: ReplicaPlacementProblem
    source: ReplicaPlacementProblem = field(repr=False)
    demand: float
    capacity: float
    boundary_budgets: Mapping[NodeId, float] = field(repr=False)

    @property
    def residual_capacity(self) -> float:
        """Capacity left in the shard once its own demand is served."""
        return self.capacity - self.demand

    @property
    def contended(self) -> bool:
        """Whether the shard's demand exceeds its own capacity."""
        return self.demand > self.capacity

    @property
    def clients(self) -> Tuple[NodeId, ...]:
        """The shard's clients (identical ids to the global tree)."""
        return self.problem.tree.client_ids

    @property
    def size(self) -> int:
        """Elements in the shard sub-tree (internal nodes + clients)."""
        return self.problem.tree.size

    def boundary_budget(self, client_id: NodeId) -> float:
        """QoS slack of ``client_id`` at the shard root (``inf`` = no bound)."""
        return self.boundary_budgets.get(client_id, math.inf)

    def __repr__(self) -> str:  # field(repr=False) on mappings keeps this short
        return (
            f"Shard({self.index}, root={self.root!r}, "
            f"demand={self.demand:g}/{self.capacity:g})"
        )


@dataclass(frozen=True)
class ShardPlan:
    """A partition of one problem into shard + residual sub-problems.

    ``shards`` hold the cut subtrees; ``residual`` is the top region (the
    global root and everything not under a cut node -- it may contain no
    clients at all).  ``client_region`` maps *every* client id to the
    region that owns it: shard position, or ``len(shards)`` for the
    residual region.
    """

    problem: ReplicaPlacementProblem
    cut: Tuple[NodeId, ...]
    shards: Tuple[Shard, ...]
    residual: ReplicaPlacementProblem
    client_region: Mapping[NodeId, int] = field(repr=False)

    @property
    def n_regions(self) -> int:
        """Shards plus the residual region."""
        return len(self.shards) + 1

    @property
    def residual_region(self) -> int:
        """The region index owning clients above the cut."""
        return len(self.shards)

    def region_of(self, client_id: NodeId) -> int:
        """Region index owning ``client_id`` (residual when above the cut)."""
        return self.client_region.get(client_id, len(self.shards))

    def region_problems(self) -> Tuple[ReplicaPlacementProblem, ...]:
        """Per-region problems, shards first, residual last."""
        return tuple(shard.problem for shard in self.shards) + (self.residual,)

    def describe(self) -> str:
        parts = ", ".join(
            f"{shard.root!r}:{shard.demand:g}/{shard.capacity:g}"
            for shard in self.shards
        )
        return f"ShardPlan({len(self.shards)} shards: {parts})"

    def __repr__(self) -> str:
        return self.describe()


def choose_cut(tree: TreeNetwork, shards: int) -> Tuple[NodeId, ...]:
    """Pick a cut of up to ``shards`` internal nodes by subtree-request mass.

    Greedy descent: start from the root's internal children and repeatedly
    split the heaviest candidate (by :meth:`TreeNetwork.subtree_requests`)
    into its internal children while that grows the cut, stopping at the
    target count or when no candidate has two internal children left.
    Candidates whose subtree contains no client are dropped -- an empty
    shard would solve to nothing and only pad the plan.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    candidates: List[NodeId] = list(tree.child_nodes(tree.root))
    while len(candidates) < shards:
        best_pos = -1
        best_mass = -1.0
        for pos, node_id in enumerate(candidates):
            # Splitting replaces one candidate with its internal children,
            # so only >= 2 children grow the cut.
            if len(tree.child_nodes(node_id)) < 2:
                continue
            mass = tree.subtree_requests(node_id)
            if mass > best_mass:
                best_mass = mass
                best_pos = pos
        if best_pos < 0:
            break
        split = candidates.pop(best_pos)
        candidates[best_pos:best_pos] = tree.child_nodes(split)
    populated = [nid for nid in candidates if tree.subtree_clients(nid)]
    return tuple(populated[:shards] if shards > 0 else populated)


def _validate_cut(tree: TreeNetwork, cut: Sequence[NodeId]) -> Tuple[NodeId, ...]:
    """Check an explicit cut: internal non-root nodes forming an antichain."""
    seen = set()
    accepted: List[NodeId] = []
    for node_id in cut:
        if not tree.is_node(node_id):
            raise ValueError(f"cut node {node_id!r} is not an internal node")
        if node_id == tree.root:
            raise ValueError("the root cannot be a cut node (the residual region owns it)")
        if node_id in seen:
            raise ValueError(f"duplicate cut node {node_id!r}")
        seen.add(node_id)
        accepted.append(node_id)
    for node_id in accepted:
        for ancestor in tree.ancestors(node_id):
            if ancestor in seen:
                raise ValueError(
                    f"cut nodes must form an antichain: {ancestor!r} is an "
                    f"ancestor of {node_id!r}"
                )
    # Client-less subtrees stay in the residual region (an empty shard would
    # solve to nothing); dropping them keeps the plan minimal.
    return tuple(nid for nid in accepted if tree.subtree_clients(nid))


def _boundary_budgets(
    problem: ReplicaPlacementProblem, root: NodeId, clients: Sequence[NodeId]
) -> Dict[NodeId, float]:
    """Global QoS slack of each shard client at the shard root."""
    constraints = problem.constraints
    if not constraints.has_qos:
        return {}
    tree = problem.tree
    by_distance = constraints.qos_mode is QoSMode.DISTANCE
    root_depth = tree.depth(root)
    budgets: Dict[NodeId, float] = {}
    for client_id in clients:
        bound = tree.client(client_id).qos
        if not math.isfinite(bound):
            continue
        if by_distance:
            spent = float(tree.depth(client_id) - root_depth)
        else:
            spent = tree.latency(client_id, root)
        budgets[client_id] = bound - spent
    return budgets


def partition_problem(
    problem: ReplicaPlacementProblem,
    *,
    shards: Optional[ShardSpec] = None,
    cut: Optional[Sequence[NodeId]] = None,
) -> ShardPlan:
    """Partition ``problem`` into per-shard sub-problems plus a residual.

    ``shards`` is either a target shard count or an explicit cut sequence
    (``cut=`` is the explicit-only spelling).  Each shard's sub-tree keeps
    the global link insertion order, so its DFS layout is the contiguous
    span the global :class:`~repro.core.index.TreeIndex` would assign it --
    that is what lets :meth:`TreeIndex.sliced` build per-shard indexes
    without a whole-tree pass.

    A plan with fewer than two shards is still returned (callers treat it
    as "solve whole-tree"); the residual problem may legitimately contain
    zero clients when the cut covers every leaf.
    """
    if cut is None and shards is None:
        raise ValueError("provide shards= (count) or cut= (explicit node list)")
    if cut is not None and shards is not None:
        raise ValueError("provide only one of shards= and cut=")
    tree = problem.tree
    if cut is None and not isinstance(shards, int):
        cut = tuple(shards)  # sequence spec: an explicit cut
    if cut is not None:
        cut_nodes = _validate_cut(tree, cut)
    else:
        cut_nodes = choose_cut(tree, shards)

    # One pass assigning every element to its region (shard i / residual k).
    k = len(cut_nodes)
    region_of: Dict[NodeId, int] = {}
    for i, cut_id in enumerate(cut_nodes):
        for nid in tree.subtree_nodes(cut_id):
            region_of[nid] = i
        for cid in tree.subtree_clients(cut_id):
            region_of[cid] = i
    region_nodes: List[List] = [[] for _ in range(k + 1)]
    region_clients: List[List] = [[] for _ in range(k + 1)]
    region_links: List[List[Link]] = [[] for _ in range(k + 1)]
    for nid in tree.node_ids:
        region_nodes[region_of.get(nid, k)].append(tree.node(nid))
    client_region: Dict[NodeId, int] = {}
    for cid in tree.client_ids:
        region = region_of.get(cid, k)
        client_region[cid] = region
        region_clients[region].append(tree.client(cid))
    cut_set = set(cut_nodes)
    for link in tree.links():
        if link.child in cut_set:
            continue  # the cut link itself belongs to neither region
        region_links[region_of.get(link.child, k)].append(link)

    base_name = problem.name or "problem"
    shard_objs: List[Shard] = []
    for i, cut_id in enumerate(cut_nodes):
        sub_tree = TreeNetwork(region_nodes[i], region_clients[i], region_links[i])
        sub_problem = ReplicaPlacementProblem(
            tree=sub_tree,
            constraints=problem.constraints,
            kind=problem.kind,
            name=f"{base_name}[shard:{cut_id}]",
        )
        shard_objs.append(
            Shard(
                index=i,
                root=cut_id,
                parent=tree.parent(cut_id),
                problem=sub_problem,
                source=problem,
                demand=tree.subtree_requests(cut_id),
                capacity=sum(node.capacity for node in region_nodes[i]),
                boundary_budgets=_boundary_budgets(
                    problem, cut_id, sub_tree.client_ids
                ),
            )
        )
    residual_tree = TreeNetwork(region_nodes[k], region_clients[k], region_links[k])
    residual = ReplicaPlacementProblem(
        tree=residual_tree,
        constraints=problem.constraints,
        kind=problem.kind,
        name=f"{base_name}[residual]",
    )
    return ShardPlan(
        problem=problem,
        cut=cut_nodes,
        shards=tuple(shard_objs),
        residual=residual,
        client_region=client_region,
    )
