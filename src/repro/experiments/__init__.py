"""Experiment harness reproducing the paper's evaluation (Section 7).

* :mod:`repro.experiments.metrics` -- the success-rate and relative-cost
  metrics of Section 7.2;
* :mod:`repro.experiments.harness` -- campaign runner: generate random
  trees for a load sweep, run every heuristic and the LP lower bound,
  collect per-instance records;
* :mod:`repro.experiments.figures` -- regeneration of Figures 9-12 (success
  rate and relative cost, homogeneous and heterogeneous);
* :mod:`repro.experiments.tables` -- the Table 1 complexity-validation
  experiment and the Section 3 example table;
* :mod:`repro.experiments.ablations` -- ablation studies on the design
  choices of the heuristics and of the lower bound;
* :mod:`repro.experiments.reporting` -- ASCII tables and CSV export.
"""

from repro.experiments.metrics import success_rate, relative_cost, RelativeCostAccumulator
from repro.experiments.harness import (
    CampaignConfig,
    InstanceRecord,
    CampaignResult,
    run_campaign,
)
from repro.experiments.figures import (
    FigureSeries,
    figure9_homogeneous_success,
    figure10_homogeneous_cost,
    figure11_heterogeneous_success,
    figure12_heterogeneous_cost,
)
from repro.experiments.reporting import ascii_table, series_table, format_float

__all__ = [
    "success_rate",
    "relative_cost",
    "RelativeCostAccumulator",
    "CampaignConfig",
    "InstanceRecord",
    "CampaignResult",
    "run_campaign",
    "FigureSeries",
    "figure9_homogeneous_success",
    "figure10_homogeneous_cost",
    "figure11_heterogeneous_success",
    "figure12_heterogeneous_cost",
    "ascii_table",
    "series_table",
    "format_float",
]
