"""Metrics of the experimental study (paper Section 7.2).

Two quantities are reported per load value ``lambda``:

* the **percentage of success**: the fraction of generated trees on which a
  heuristic finds a valid solution (the LP row counts the trees that admit
  *any* solution, i.e. the solvable instances);
* the **relative cost**

  .. math::  rcost = \\frac{1}{|T_\\lambda|}
             \\sum_{t \\in T_\\lambda} \\frac{cost_{LP}(t)}{cost_h(t)}

  where ``T_lambda`` is the set of trees (for this ``lambda``) on which the
  LP-based lower bound is finite, ``cost_LP`` is that lower bound and
  ``cost_h`` the cost of the heuristic's solution, taken as ``+inf`` when
  the heuristic failed (so failures pull the average towards zero, exactly
  like the paper's accounting).  A relative cost of 1.0 means the heuristic
  matches the lower bound on every solvable tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

__all__ = ["success_rate", "relative_cost", "RelativeCostAccumulator"]


def success_rate(outcomes: Iterable[Optional[float]]) -> float:
    """Fraction of instances with a (finite-cost) solution.

    ``outcomes`` holds one entry per instance: the solution cost, or ``None``
    / ``inf`` when the algorithm failed on that instance.
    """
    outcomes = list(outcomes)
    if not outcomes:
        return 0.0
    solved = sum(
        1 for value in outcomes if value is not None and math.isfinite(value)
    )
    return solved / len(outcomes)


def relative_cost(
    lower_bounds: Iterable[float], heuristic_costs: Iterable[Optional[float]]
) -> float:
    """Paper Section 7.2 relative cost of a heuristic against the LP bound.

    Instances whose lower bound is infinite (no solution exists at all) are
    excluded from the average; instances where the heuristic failed
    contribute 0 (``cost_h = +inf``).
    """
    accumulator = RelativeCostAccumulator()
    for bound, cost in zip(lower_bounds, heuristic_costs):
        accumulator.add(bound, cost)
    return accumulator.value()


@dataclass
class RelativeCostAccumulator:
    """Streaming accumulator of the relative-cost metric."""

    total: float = 0.0
    count: int = 0
    failures: int = 0

    def add(self, lower_bound: float, heuristic_cost: Optional[float]) -> None:
        """Record one instance (skipped when the instance is globally infeasible)."""
        if lower_bound is None or not math.isfinite(lower_bound):
            return
        self.count += 1
        if heuristic_cost is None or not math.isfinite(heuristic_cost):
            self.failures += 1
            return  # contributes lb / inf = 0
        if heuristic_cost <= 0:
            # A zero-cost solution can only happen on zero-load instances, in
            # which case the bound is zero as well; count it as a perfect hit.
            self.total += 1.0
            return
        self.total += lower_bound / heuristic_cost

    def value(self) -> float:
        """The averaged relative cost (0.0 when no solvable instance was seen)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count
