"""Regeneration of the paper's Figures 9-12.

Each ``figure*`` function runs (or reuses) a campaign and returns a
:class:`FigureSeries`: the data series behind the corresponding figure plus
an ASCII rendering.  The paper-scale plan (30 trees per load value, sizes up
to 400) is the default of :class:`~repro.experiments.harness.CampaignConfig`;
the ``scale`` argument lets benchmarks run a reduced plan with the same
shape.

=========  =======================================  ==========================
Figure     Quantity                                 Platform
=========  =======================================  ==========================
Figure 9   percentage of success per heuristic      homogeneous
Figure 10  relative cost vs the LP lower bound      homogeneous
Figure 11  percentage of success per heuristic      heterogeneous
Figure 12  relative cost vs the LP lower bound      heterogeneous
=========  =======================================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.experiments.harness import CampaignConfig, CampaignResult, run_campaign
from repro.experiments.reporting import series_table

__all__ = [
    "FigureSeries",
    "reduced_config",
    "figure9_homogeneous_success",
    "figure10_homogeneous_cost",
    "figure11_heterogeneous_success",
    "figure12_heterogeneous_cost",
]


@dataclass
class FigureSeries:
    """The data behind one of the paper's figures."""

    figure: str
    quantity: str
    series: Dict[str, Dict[float, float]]
    campaign: CampaignResult

    def table(self) -> str:
        """ASCII rendering (one row per lambda, one column per heuristic)."""
        return series_table(self.series)

    def at(self, name: str, load: float) -> Optional[float]:
        """Series value of ``name`` at load ``load`` (``None`` when absent)."""
        values = self.series.get(name, {})
        for key, value in values.items():
            if abs(key - load) < 1e-9:
                return value
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.figure} ({self.quantity})\n{self.table()}"


def reduced_config(
    *,
    homogeneous: bool,
    trees_per_lambda: int = 5,
    size_range: Tuple[int, int] = (15, 60),
    lambdas: Optional[Tuple[float, ...]] = None,
    seed: int = 2007,
) -> CampaignConfig:
    """A laptop-sized campaign configuration with the paper's structure."""
    config = CampaignConfig(
        homogeneous=homogeneous,
        trees_per_lambda=trees_per_lambda,
        size_range=size_range,
        seed=seed,
    )
    if lambdas is not None:
        config = replace(config, lambdas=tuple(lambdas))
    return config


def _figure(
    figure: str,
    quantity: str,
    config: CampaignConfig,
    campaign: Optional[CampaignResult],
) -> FigureSeries:
    result = campaign if campaign is not None else run_campaign(config)
    if quantity == "success":
        series = result.success_series()
    elif quantity == "relative_cost":
        series = result.relative_cost_series()
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown quantity {quantity!r}")
    return FigureSeries(figure=figure, quantity=quantity, series=series, campaign=result)


def figure9_homogeneous_success(
    config: Optional[CampaignConfig] = None,
    *,
    campaign: Optional[CampaignResult] = None,
) -> FigureSeries:
    """Figure 9: percentage of success, homogeneous platforms."""
    config = config or CampaignConfig(homogeneous=True)
    return _figure("Figure 9", "success", config, campaign)


def figure10_homogeneous_cost(
    config: Optional[CampaignConfig] = None,
    *,
    campaign: Optional[CampaignResult] = None,
) -> FigureSeries:
    """Figure 10: relative cost against the LP bound, homogeneous platforms."""
    config = config or CampaignConfig(homogeneous=True)
    return _figure("Figure 10", "relative_cost", config, campaign)


def figure11_heterogeneous_success(
    config: Optional[CampaignConfig] = None,
    *,
    campaign: Optional[CampaignResult] = None,
) -> FigureSeries:
    """Figure 11: percentage of success, heterogeneous platforms."""
    config = config or CampaignConfig(homogeneous=False)
    return _figure("Figure 11", "success", config, campaign)


def figure12_heterogeneous_cost(
    config: Optional[CampaignConfig] = None,
    *,
    campaign: Optional[CampaignResult] = None,
) -> FigureSeries:
    """Figure 12: relative cost against the LP bound, heterogeneous platforms."""
    config = config or CampaignConfig(homogeneous=False)
    return _figure("Figure 12", "relative_cost", config, campaign)
