"""Table-style experiments: paper Table 1 and the Section 3 examples.

Table 1 of the paper is a complexity classification, not a measurement; what
can be *reproduced computationally* is the evidence behind each cell:

* **Multiple / homogeneous -- polynomial**: the three-pass greedy algorithm
  matches the exact ILP optimum on every random instance tried;
* **Closest / homogeneous -- polynomial** (known result): the best Closest
  placement found by exhaustive search is matched by the ILP;
* **Upwards / homogeneous -- NP-complete**: the 3-PARTITION reduction
  instances of Theorem 2 are solvable at cost ``m * B`` exactly when the
  underlying 3-PARTITION instance is a yes-instance;
* **all policies / heterogeneous -- NP-complete**: the 2-PARTITION reduction
  instances of Theorem 3 are solvable at cost ``S + 1`` exactly when the
  underlying 2-PARTITION instance is a yes-instance.

:func:`table1_evidence` runs those checks and returns one row per cell;
:func:`section3_examples_table` evaluates the motivating examples of
Section 3 (Figures 1-5) and reports, per policy, whether a solution exists
and at what cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.exhaustive import optimal_cost
from repro.algorithms.multiple_homogeneous import MultipleHomogeneousOptimal
from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem, replica_cost_problem, replica_counting_problem
from repro.experiments.reporting import ascii_table
from repro.lp.exact import exact_cost
from repro.workloads import reference_trees
from repro.workloads.generator import GeneratorConfig, TreeGenerator

__all__ = [
    "Table1Row",
    "table1_evidence",
    "table1_table",
    "section3_examples_table",
]


@dataclass
class Table1Row:
    """Evidence for one cell of paper Table 1."""

    policy: Policy
    platform: str
    paper_complexity: str
    check: str
    instances: int
    agreements: int

    @property
    def consistent(self) -> bool:
        """Whether every instance agreed with the paper's claim."""
        return self.agreements == self.instances


def _random_homogeneous_instances(
    count: int, seed: int, size: int = 14
) -> List[ReplicaPlacementProblem]:
    generator = TreeGenerator(seed)
    problems = []
    for index in range(count):
        tree = generator.generate(
            GeneratorConfig(
                size=size,
                target_load=0.4 + 0.05 * (index % 5),
                homogeneous=True,
                base_capacity=20.0,
                client_fraction=0.5,
            )
        )
        problems.append(replica_counting_problem(tree))
    return problems


def table1_evidence(*, instances: int = 5, seed: int = 42) -> List[Table1Row]:
    """Computational evidence for each cell of paper Table 1."""
    rows: List[Table1Row] = []

    # --- Multiple / homogeneous: greedy == ILP ------------------------- #
    greedy = MultipleHomogeneousOptimal()
    problems = _random_homogeneous_instances(instances, seed)
    agree = 0
    for problem in problems:
        try:
            greedy_cost = greedy.solve(problem).cost(problem)
        except InfeasibleError:
            greedy_cost = math.inf
        try:
            ilp_cost = exact_cost(problem, Policy.MULTIPLE)
        except InfeasibleError:
            ilp_cost = math.inf
        if math.isclose(greedy_cost, ilp_cost) or (
            math.isinf(greedy_cost) and math.isinf(ilp_cost)
        ):
            agree += 1
    rows.append(
        Table1Row(
            policy=Policy.MULTIPLE,
            platform="homogeneous",
            paper_complexity="polynomial",
            check="three-pass greedy matches the exact ILP optimum",
            instances=len(problems),
            agreements=agree,
        )
    )

    # --- Closest / homogeneous: exhaustive == ILP ----------------------- #
    agree = 0
    for problem in problems:
        try:
            brute = optimal_cost(problem, Policy.CLOSEST)
        except InfeasibleError:
            brute = math.inf
        try:
            ilp = exact_cost(problem, Policy.CLOSEST)
        except InfeasibleError:
            ilp = math.inf
        if math.isclose(brute, ilp) or (math.isinf(brute) and math.isinf(ilp)):
            agree += 1
    rows.append(
        Table1Row(
            policy=Policy.CLOSEST,
            platform="homogeneous",
            paper_complexity="polynomial (known)",
            check="exhaustive optimum matches the exact ILP optimum",
            instances=len(problems),
            agreements=agree,
        )
    )

    # --- Upwards / homogeneous: 3-PARTITION reduction ------------------- #
    yes_instance = (10, 14, 16, 12, 13, 15)  # two triples summing to 40
    no_instance = (11, 11, 11, 11, 11, 17)  # cannot be split into triples of 36
    agree = 0
    for values, bound, expected in ((yes_instance, 40, True), (no_instance, 36, False)):
        tree = reference_trees.three_partition_tree(values, bound)
        problem = replica_cost_problem(tree)
        target = len(values) // 3 * bound
        try:
            cost = exact_cost(problem, Policy.UPWARDS)
            solvable_at_target = cost <= target + 1e-6
        except InfeasibleError:
            solvable_at_target = False
        if solvable_at_target == expected:
            agree += 1
    rows.append(
        Table1Row(
            policy=Policy.UPWARDS,
            platform="homogeneous",
            paper_complexity="NP-complete (Theorem 2)",
            check="3-PARTITION instances solvable at cost mB iff yes-instances",
            instances=2,
            agreements=agree,
        )
    )

    # --- heterogeneous: 2-PARTITION reduction --------------------------- #
    yes_values = (3, 1, 1, 2, 2, 1)  # total 10, split 5/5
    no_values = (3, 3, 1)  # total 7, no equal split
    for policy in (Policy.CLOSEST, Policy.MULTIPLE, Policy.UPWARDS):
        agree = 0
        for values, expected in ((yes_values, True), (no_values, False)):
            tree = reference_trees.two_partition_tree(values)
            problem = replica_cost_problem(tree)
            target = sum(values) + 1
            try:
                cost = exact_cost(problem, policy)
                solvable_at_target = cost <= target + 1e-6
            except InfeasibleError:
                solvable_at_target = False
            if solvable_at_target == expected:
                agree += 1
        rows.append(
            Table1Row(
                policy=policy,
                platform="heterogeneous",
                paper_complexity="NP-complete (Theorem 3)",
                check="2-PARTITION instances solvable at cost S+1 iff yes-instances",
                instances=2,
                agreements=agree,
            )
        )
    return rows


def table1_table(rows: Optional[Sequence[Table1Row]] = None, **kwargs) -> str:
    """ASCII rendering of :func:`table1_evidence`."""
    rows = rows if rows is not None else table1_evidence(**kwargs)
    return ascii_table(
        ["policy", "platform", "paper", "evidence", "checked", "agree"],
        [
            (
                row.policy.value,
                row.platform,
                row.paper_complexity,
                row.check,
                row.instances,
                row.agreements,
            )
            for row in rows
        ],
    )


def section3_examples_table(*, n: int = 5, big_factor: float = 20.0) -> str:
    """Costs of the Section 3 example families under the three policies."""
    examples: List[Tuple[str, ReplicaPlacementProblem]] = []
    for variant in ("a", "b", "c"):
        examples.append(
            (
                f"Figure 1({variant})",
                replica_counting_problem(reference_trees.figure1_tree(variant)),
            )
        )
    examples.append(
        ("Figure 2", replica_counting_problem(reference_trees.figure2_tree(n)))
    )
    examples.append(
        ("Figure 3", replica_counting_problem(reference_trees.figure3_tree(n)))
    )
    examples.append(
        (
            "Figure 4",
            replica_cost_problem(reference_trees.figure4_tree(n, big_factor)),
        )
    )
    examples.append(
        (
            "Figure 5",
            replica_counting_problem(reference_trees.figure5_tree(n, float(n * 4))),
        )
    )

    rows = []
    for label, problem in examples:
        cells: List[object] = [label]
        for policy in Policy.ordered():
            try:
                cells.append(exact_cost(problem, policy))
            except InfeasibleError:
                cells.append("infeasible")
        rows.append(cells)
    return ascii_table(["instance", "closest", "upwards", "multiple"], rows)
