"""Plain-text reporting helpers (ASCII tables, CSV export).

The paper presents its results as gnuplot figures; the deliverable here is
the underlying data series, printed as aligned ASCII tables by the benchmark
harness and the examples, and optionally exported as CSV for external
plotting.
"""

from __future__ import annotations

import csv
import io
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["format_float", "ascii_table", "series_table", "series_to_csv"]

Number = Union[int, float]


def format_float(value: Optional[Number], precision: int = 3) -> str:
    """Format a number for table cells (dashes for missing values)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]], *, precision: int = 3) -> str:
    """Render rows as an aligned ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append(
            [
                cell if isinstance(cell, str) else format_float(cell, precision)
                for cell in row
            ]
        )
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    parts = [line([str(h) for h in headers]), separator]
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def series_table(
    series: Mapping[str, Mapping[float, Number]],
    *,
    x_label: str = "lambda",
    precision: int = 3,
) -> str:
    """Render ``{series_name: {x: y}}`` with one column per series.

    This is the layout of the paper's figures: the load on the x axis, one
    curve per heuristic.
    """
    xs = sorted({x for values in series.values() for x in values})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: List[object] = [format_float(x, 2)]
        for name in series:
            row.append(series[name].get(x))
        rows.append(row)
    return ascii_table(headers, rows, precision=precision)


def series_to_csv(
    series: Mapping[str, Mapping[float, Number]],
    *,
    x_label: str = "lambda",
) -> str:
    """Export ``{series_name: {x: y}}`` as CSV text."""
    xs = sorted({x for values in series.values() for x in values})
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([x_label] + list(series))
    for x in xs:
        writer.writerow([x] + [series[name].get(x, "") for name in series])
    return buffer.getvalue()
