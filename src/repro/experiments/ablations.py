"""Ablation studies on the design choices called out in DESIGN.md.

Four ablations are provided, each returning the data series plus an ASCII
table:

* :func:`ablate_drain_order` -- MBU drains *small* clients first when
  filling an exhausted server; the ablation compares against a variant
  draining large clients first (MTD's order) on the same campaign;
* :func:`ablate_second_pass` -- UTD/MTD add a second top-down pass for the
  requests left over by the exhausted-node pass; the ablation measures the
  success rate with the second pass disabled;
* :func:`ablate_lower_bound` -- the paper's refined bound (integer ``x``,
  rational ``y``) against the fully rational relaxation: how much tighter is
  it, and how much more expensive to compute;
* :func:`ablate_mixed_best` -- the cost benefit of combining all heuristics
  (MixedBest) over the always-feasible MultipleGreedy alone.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import get_heuristic
from repro.algorithms.multiple.mbu import MultipleBottomUp
from repro.algorithms.upwards.utd import UpwardsTopDown
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.experiments.metrics import RelativeCostAccumulator, success_rate
from repro.experiments.reporting import ascii_table
from repro.lp.bounds import lp_lower_bound, rational_relaxation_bound
from repro.workloads.generator import GeneratorConfig, TreeGenerator

__all__ = [
    "AblationResult",
    "ablate_drain_order",
    "ablate_second_pass",
    "ablate_lower_bound",
    "ablate_mixed_best",
]


@dataclass
class AblationResult:
    """Outcome of one ablation: per-variant metric values and a table."""

    name: str
    metrics: Dict[str, Dict[str, float]]
    table: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}\n{self.table}"


class _MBULargestFirst(MultipleBottomUp):
    """MBU variant draining large clients first (ablation only)."""

    name = "MBU-largest-first"

    def _solve(self, problem):  # noqa: D102 - ablation-only override
        # Re-run MBU's logic with the opposite drain order by temporarily
        # patching the drain calls through a tiny subclassed state would be
        # invasive; instead reuse MTD's machinery, which is exactly MBU with
        # largest-first order on the second pass and a top-down first pass.
        # For a like-for-like comparison we keep MBU's bottom-up structure
        # and only flip the order, so we duplicate the two passes here.
        from repro.algorithms.common import make_state

        state = make_state(problem)
        tree = problem.tree
        for node_id in tree.post_order_nodes():
            capacity = problem.capacity(node_id)
            if state.inreq[node_id] >= capacity - 1e-9 and state.inreq[node_id] > 1e-9:
                state.place(node_id)
                state.drain(node_id, capacity, largest_first=True, split_last=True)
        if not state.all_requests_affected():
            self._second_pass(state, tree, tree.root)
        if not state.all_requests_affected():
            return None
        return state.to_solution(self.policy, self.name)

    def _second_pass(self, state, tree, node_id):
        if not state.is_replica(node_id) and state.inreq[node_id] > 1e-9:
            state.place(node_id)
            state.drain(node_id, state.inreq[node_id], largest_first=True, split_last=True)
            return
        for child in tree.child_nodes(node_id):
            if state.inreq[child] > 1e-9:
                self._second_pass(state, tree, child)


class _UTDNoSecondPass(UpwardsTopDown):
    """UTD variant without the completion pass (ablation only)."""

    name = "UTD-no-second-pass"

    def _second_pass(self, state, tree, node_id):  # noqa: D102 - disabled on purpose
        return


def _sample_problems(
    *,
    count: int,
    homogeneous: bool,
    seed: int,
    size: int = 60,
    loads: Sequence[float] = (0.3, 0.5, 0.7),
) -> List[ReplicaPlacementProblem]:
    generator = TreeGenerator(seed)
    kind = ProblemKind.REPLICA_COUNTING if homogeneous else ProblemKind.REPLICA_COST
    problems = []
    for index in range(count):
        load = loads[index % len(loads)]
        tree = generator.generate(
            GeneratorConfig(size=size, target_load=load, homogeneous=homogeneous)
        )
        problems.append(ReplicaPlacementProblem(tree=tree, kind=kind))
    return problems


def _evaluate(
    variants: Dict[str, object], problems: Sequence[ReplicaPlacementProblem]
) -> Dict[str, Dict[str, float]]:
    bounds = [lp_lower_bound(problem).value for problem in problems]
    metrics: Dict[str, Dict[str, float]] = {}
    for label, heuristic in variants.items():
        costs: List[Optional[float]] = []
        for problem in problems:
            solution = heuristic.try_solve(problem)
            costs.append(solution.cost(problem) if solution is not None else None)
        accumulator = RelativeCostAccumulator()
        for bound, cost in zip(bounds, costs):
            accumulator.add(bound, cost)
        metrics[label] = {
            "success": success_rate(costs),
            "relative_cost": accumulator.value(),
        }
    return metrics


def _metrics_table(metrics: Dict[str, Dict[str, float]]) -> str:
    return ascii_table(
        ["variant", "success", "relative_cost"],
        [
            (label, values["success"], values["relative_cost"])
            for label, values in metrics.items()
        ],
    )


def ablate_drain_order(
    *, count: int = 12, homogeneous: bool = False, seed: int = 11
) -> AblationResult:
    """MBU's smallest-clients-first drain order vs a largest-first variant."""
    problems = _sample_problems(count=count, homogeneous=homogeneous, seed=seed)
    metrics = _evaluate(
        {"MBU (smallest first)": get_heuristic("MBU"), "MBU (largest first)": _MBULargestFirst()},
        problems,
    )
    return AblationResult("drain order (MBU)", metrics, _metrics_table(metrics))


def ablate_second_pass(
    *, count: int = 12, homogeneous: bool = True, seed: int = 12
) -> AblationResult:
    """UTD with and without the completion (second) pass."""
    problems = _sample_problems(count=count, homogeneous=homogeneous, seed=seed)
    metrics = _evaluate(
        {"UTD (two passes)": get_heuristic("UTD"), "UTD (first pass only)": _UTDNoSecondPass()},
        problems,
    )
    return AblationResult("UTD second pass", metrics, _metrics_table(metrics))


def ablate_lower_bound(
    *, count: int = 8, homogeneous: bool = False, seed: int = 13
) -> AblationResult:
    """Refined (mixed-integer) lower bound vs the fully rational relaxation."""
    problems = _sample_problems(count=count, homogeneous=homogeneous, seed=seed)
    rows = []
    gaps = []
    times = {"mixed": 0.0, "rational": 0.0}
    for index, problem in enumerate(problems):
        start = time.perf_counter()
        mixed = lp_lower_bound(problem).value
        times["mixed"] += time.perf_counter() - start
        start = time.perf_counter()
        rational = rational_relaxation_bound(problem).value
        times["rational"] += time.perf_counter() - start
        ratio = mixed / rational if rational and math.isfinite(rational) and rational > 0 else math.nan
        gaps.append(ratio)
        rows.append((f"instance {index}", rational, mixed, ratio))
    finite_gaps = [g for g in gaps if math.isfinite(g)]
    tightening = sum(finite_gaps) / len(finite_gaps) if finite_gaps else math.nan
    metrics = {
        "rational": {"mean_bound_ratio": 1.0, "total_seconds": times["rational"]},
        "mixed": {"mean_bound_ratio": tightening, "total_seconds": times["mixed"]},
    }
    table = ascii_table(["instance", "rational", "mixed", "mixed/rational"], rows)
    summary = ascii_table(
        ["variant", "mean bound ratio", "total seconds"],
        [
            ("rational relaxation", 1.0, times["rational"]),
            ("mixed (paper)", tightening, times["mixed"]),
        ],
    )
    return AblationResult("lower bound refinement", metrics, table + "\n\n" + summary)


def ablate_mixed_best(
    *, count: int = 12, homogeneous: bool = False, seed: int = 14
) -> AblationResult:
    """MixedBest against MultipleGreedy alone."""
    problems = _sample_problems(count=count, homogeneous=homogeneous, seed=seed)
    metrics = _evaluate(
        {"MG alone": get_heuristic("MG"), "MixedBest": get_heuristic("MixedBest")},
        problems,
    )
    return AblationResult("MixedBest vs MG", metrics, _metrics_table(metrics))
