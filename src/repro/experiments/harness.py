"""Campaign runner for the paper's experimental study (Section 7).

A *campaign* generates random trees over a load sweep (paper: 9 values of
``lambda``, 30 trees each, sizes 15-400), runs every selected heuristic and
the LP-based lower bound on each tree, and records per-instance outcomes.
The aggregated success-rate and relative-cost series are exactly what
Figures 9-12 plot.

The default parameters reproduce the paper's campaign; the benchmark suite
uses smaller trees/counts (configurable) so a full run stays laptop-friendly.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algorithms.base import get_heuristic
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.results import ResultBase, decode_float, encode_float, register_result
from repro.core.tree import TreeNetwork
from repro.experiments.metrics import RelativeCostAccumulator, success_rate
from repro.experiments.reporting import series_table
from repro.workloads.generator import GeneratorConfig, TreeGenerator

__all__ = [
    "CampaignConfig",
    "InstanceRecord",
    "CampaignResult",
    "run_campaign",
    "PAPER_HEURISTICS",
    "ChurnCampaignConfig",
    "ChurnRecord",
    "ChurnCampaignResult",
    "run_churn_campaign",
]

#: The heuristics compared in the paper's figures, plus the MixedBest combiner.
PAPER_HEURISTICS: Tuple[str, ...] = (
    "CTDA",
    "CTDLF",
    "CBU",
    "UTD",
    "UBCF",
    "MG",
    "MTD",
    "MBU",
    "MixedBest",
)

#: Label of the lower-bound pseudo-series in success-rate tables (the paper's
#: "LP" curve: the fraction of trees that admit any solution at all).
LP_SERIES = "LP"


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of an experimental campaign.

    The defaults reproduce the paper's setup; benchmarks shrink
    ``trees_per_lambda`` and ``size_range`` to keep runtimes reasonable.
    """

    lambdas: Sequence[float] = tuple(round(0.1 * k, 1) for k in range(1, 10))
    trees_per_lambda: int = 30
    size_range: Tuple[int, int] = (15, 400)
    homogeneous: bool = True
    seed: int = 2007
    heuristics: Sequence[str] = PAPER_HEURISTICS
    lower_bound_method: str = "mixed"
    base_capacity: float = 100.0
    capacity_choices: Sequence[float] = (50.0, 100.0, 200.0, 400.0)
    client_fraction: float = 0.7
    max_children: int = 3
    lp_time_limit: Optional[float] = 60.0

    def problem_kind(self) -> ProblemKind:
        """Replica Counting on homogeneous platforms, Replica Cost otherwise."""
        return ProblemKind.REPLICA_COUNTING if self.homogeneous else ProblemKind.REPLICA_COST

    def scaled(self, *, trees_per_lambda: int, size_range: Tuple[int, int]) -> "CampaignConfig":
        """A copy of this configuration with a smaller experimental plan."""
        return replace(self, trees_per_lambda=trees_per_lambda, size_range=size_range)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload (part of the result protocol)."""
        return {
            "lambdas": list(self.lambdas),
            "trees_per_lambda": self.trees_per_lambda,
            "size_range": list(self.size_range),
            "homogeneous": self.homogeneous,
            "seed": self.seed,
            "heuristics": list(self.heuristics),
            "lower_bound_method": self.lower_bound_method,
            "base_capacity": self.base_capacity,
            "capacity_choices": list(self.capacity_choices),
            "client_fraction": self.client_fraction,
            "max_children": self.max_children,
            "lp_time_limit": self.lp_time_limit,
        }

    @classmethod
    def from_dict(cls, payload) -> "CampaignConfig":
        """Rebuild a configuration from a :meth:`to_dict` payload."""
        return cls(
            lambdas=tuple(payload["lambdas"]),
            trees_per_lambda=int(payload["trees_per_lambda"]),
            size_range=tuple(payload["size_range"]),
            homogeneous=bool(payload["homogeneous"]),
            seed=int(payload["seed"]),
            heuristics=tuple(payload["heuristics"]),
            lower_bound_method=str(payload["lower_bound_method"]),
            base_capacity=float(payload["base_capacity"]),
            capacity_choices=tuple(payload["capacity_choices"]),
            client_fraction=float(payload["client_fraction"]),
            max_children=int(payload["max_children"]),
            lp_time_limit=payload.get("lp_time_limit"),
        )


@dataclass
class InstanceRecord:
    """Outcome of one generated tree."""

    load: float
    size: int
    homogeneous: bool
    lower_bound: float
    costs: Dict[str, Optional[float]]
    runtimes: Dict[str, float] = field(default_factory=dict)

    @property
    def solvable(self) -> bool:
        """Whether the LP proved the instance feasible (finite lower bound)."""
        return math.isfinite(self.lower_bound)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload (part of the result protocol)."""
        return {
            "load": self.load,
            "size": self.size,
            "homogeneous": self.homogeneous,
            "lower_bound": encode_float(self.lower_bound),
            "costs": {name: encode_float(cost) for name, cost in self.costs.items()},
            "runtimes": dict(self.runtimes),
        }

    @classmethod
    def from_dict(cls, payload) -> "InstanceRecord":
        """Rebuild a record from a :meth:`to_dict` payload."""
        return cls(
            load=float(payload["load"]),
            size=int(payload["size"]),
            homogeneous=bool(payload["homogeneous"]),
            lower_bound=decode_float(payload["lower_bound"]),
            costs={
                name: decode_float(cost) for name, cost in payload["costs"].items()
            },
            runtimes={
                name: float(value)
                for name, value in payload.get("runtimes", {}).items()
            },
        )


@register_result
@dataclass
class CampaignResult(ResultBase):
    """All records of a campaign plus the aggregations used by the figures."""

    payload_type = "campaign_result"

    config: CampaignConfig
    records: List[InstanceRecord]

    # ------------------------------------------------------------------ #
    @property
    def heuristic_names(self) -> Sequence[str]:
        """Heuristics that were run."""
        return tuple(self.config.heuristics)

    def records_for(self, load: float) -> List[InstanceRecord]:
        """Records of a given load value."""
        return [record for record in self.records if abs(record.load - load) < 1e-9]

    # ------------------------------------------------------------------ #
    def success_series(self) -> Dict[str, Dict[float, float]]:
        """Percentage-of-success series (paper Figures 9 and 11).

        Includes the ``LP`` pseudo-series counting the solvable instances.
        """
        series: Dict[str, Dict[float, float]] = {
            name: {} for name in (LP_SERIES,) + tuple(self.heuristic_names)
        }
        for load in self.config.lambdas:
            records = self.records_for(load)
            if not records:
                continue
            series[LP_SERIES][load] = success_rate(
                [record.lower_bound for record in records]
            )
            for name in self.heuristic_names:
                series[name][load] = success_rate(
                    [record.costs.get(name) for record in records]
                )
        return series

    def relative_cost_series(self) -> Dict[str, Dict[float, float]]:
        """Relative-cost series (paper Figures 10 and 12)."""
        series: Dict[str, Dict[float, float]] = {name: {} for name in self.heuristic_names}
        for load in self.config.lambdas:
            records = self.records_for(load)
            if not records:
                continue
            for name in self.heuristic_names:
                accumulator = RelativeCostAccumulator()
                for record in records:
                    accumulator.add(record.lower_bound, record.costs.get(name))
                series[name][load] = accumulator.value()
        return series

    # ------------------------------------------------------------------ #
    def success_table(self) -> str:
        """ASCII rendering of the success series."""
        return series_table(self.success_series())

    def relative_cost_table(self) -> str:
        """ASCII rendering of the relative-cost series."""
        return series_table(self.relative_cost_series())

    def describe(self) -> str:
        """Short campaign summary."""
        kind = "homogeneous" if self.config.homogeneous else "heterogeneous"
        return (
            f"{len(self.records)} instances, {kind}, "
            f"sizes {self.config.size_range[0]}-{self.config.size_range[1]}, "
            f"{self.config.trees_per_lambda} trees per lambda"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload (unified result protocol)."""
        return self._tagged(
            {
                "config": self.config.to_dict(),
                "records": [record.to_dict() for record in self.records],
                "success": {
                    name: {str(load): value for load, value in series.items()}
                    for name, series in self.success_series().items()
                },
                "relative_cost": {
                    name: {str(load): encode_float(value) for load, value in series.items()}
                    for name, series in self.relative_cost_series().items()
                },
            }
        )

    @classmethod
    def from_dict(cls, payload) -> "CampaignResult":
        """Rebuild a campaign result from a :meth:`to_dict` payload.

        The aggregated series are derived data and recomputed from the
        records rather than read back.
        """
        return cls(
            config=CampaignConfig.from_dict(payload["config"]),
            records=[InstanceRecord.from_dict(entry) for entry in payload["records"]],
        )


def _generate_campaign_trees(config: CampaignConfig) -> List[Tuple[float, TreeNetwork]]:
    """Draw the campaign's trees (deterministic given ``config.seed``)."""
    generator = TreeGenerator(config.seed)
    plan: List[Tuple[float, TreeNetwork]] = []
    for load in config.lambdas:
        for _ in range(config.trees_per_lambda):
            size = int(generator.rng.integers(config.size_range[0], config.size_range[1] + 1))
            tree = generator.generate(
                GeneratorConfig(
                    size=size,
                    target_load=float(load),
                    homogeneous=config.homogeneous,
                    base_capacity=config.base_capacity,
                    capacity_choices=config.capacity_choices,
                    client_fraction=config.client_fraction,
                    max_children=config.max_children,
                )
            )
            plan.append((float(load), tree))
    return plan


def _evaluate_entry(entry: Tuple[float, TreeNetwork], config: CampaignConfig) -> InstanceRecord:
    """Worker-side evaluation of one ``(load, tree)`` campaign entry."""
    load, tree = entry
    heuristics = [(name, get_heuristic(name)) for name in config.heuristics]
    return evaluate_instance(tree, load, config, heuristics)


def _evaluate_chunk(
    chunk: List[Tuple[float, TreeNetwork]], *, config: CampaignConfig
) -> List[InstanceRecord]:
    """Evaluate a contiguous chunk of campaign entries (worker side)."""
    heuristics = [(name, get_heuristic(name)) for name in config.heuristics]
    return [
        evaluate_instance(tree, load, config, heuristics) for load, tree in chunk
    ]


def run_campaign(
    config: CampaignConfig,
    *,
    progress: Optional[Callable[[InstanceRecord], None]] = None,
    workers: Optional[int] = None,
) -> CampaignResult:
    """Generate the campaign trees and evaluate every heuristic on each.

    Parameters
    ----------
    progress:
        Optional callback invoked with each finished :class:`InstanceRecord`
        (used by the CLI to stream progress).  Records are always delivered
        in generation order, whatever the worker count.
    workers:
        ``None`` or ``<= 1`` evaluates sequentially in-process.  Larger
        values evaluate the generated instances over a process pool with
        per-worker chunking (tree generation itself stays sequential so the
        random campaign is identical to a sequential run).
    """
    plan = _generate_campaign_trees(config)

    if workers is None or workers <= 1 or not plan:
        heuristics = [(name, get_heuristic(name)) for name in config.heuristics]
        records = []
        for load, tree in plan:
            record = evaluate_instance(tree, load, config, heuristics)
            records.append(record)
            if progress is not None:
                progress(record)
        return CampaignResult(config=config, records=records)

    from functools import partial

    from repro.api import chunked_pool_map

    records = chunked_pool_map(partial(_evaluate_chunk, config=config), plan, workers)
    if progress is not None:
        for record in records:
            progress(record)
    return CampaignResult(config=config, records=records)


def evaluate_instance(
    tree: TreeNetwork,
    load: float,
    config: CampaignConfig,
    heuristics: Sequence[Tuple[str, object]],
) -> InstanceRecord:
    """Run the lower bound and every heuristic on one tree."""
    problem = ReplicaPlacementProblem(tree=tree, kind=config.problem_kind())

    lower = _lower_bound(problem, config)
    costs: Dict[str, Optional[float]] = {}
    runtimes: Dict[str, float] = {}
    for name, heuristic in heuristics:
        start = time.perf_counter()
        solution = heuristic.try_solve(problem)
        runtimes[name] = time.perf_counter() - start
        costs[name] = solution.cost(problem) if solution is not None else None

    return InstanceRecord(
        load=load,
        size=tree.size,
        homogeneous=config.homogeneous,
        lower_bound=lower,
        costs=costs,
        runtimes=runtimes,
    )


# --------------------------------------------------------------------------- #
# dynamic-workload churn campaign
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChurnCampaignConfig:
    """Parameters of a dynamic-workload churn sweep.

    For every churn intensity, ``trees_per_level`` base trees are generated
    and a :func:`repro.workloads.dynamic.rate_churn` trajectory is solved
    under each mode of :func:`repro.api.solve_sequence`.  The aggregated
    series answer the operational question the static campaign cannot: *how
    much placement stability does each re-solve strategy buy, at what cost,
    as traffic churn grows?*
    """

    churn_levels: Sequence[float] = (0.05, 0.1, 0.2, 0.4)
    epochs: int = 12
    trees_per_level: int = 3
    size: int = 60
    load: float = 0.5
    homogeneous: bool = True
    policy: str = "multiple"
    magnitude: float = 0.5
    quiet_probability: float = 0.25
    modes: Sequence[str] = ("incremental", "patch")
    seed: int = 2026
    #: also compute the per-epoch LP lower bound of every trajectory (via
    #: :func:`repro.api.bound_sequence`, incremental program patching) and
    #: record mean bound and mean cost-vs-bound gap per record.
    track_bounds: bool = False
    bound_method: str = "mixed"

    def problem_kind(self) -> ProblemKind:
        """Replica Counting on homogeneous platforms, Replica Cost otherwise."""
        return ProblemKind.REPLICA_COUNTING if self.homogeneous else ProblemKind.REPLICA_COST

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload (part of the result protocol)."""
        return {
            "churn_levels": list(self.churn_levels),
            "epochs": self.epochs,
            "trees_per_level": self.trees_per_level,
            "size": self.size,
            "load": self.load,
            "homogeneous": self.homogeneous,
            "policy": self.policy,
            "magnitude": self.magnitude,
            "quiet_probability": self.quiet_probability,
            "modes": list(self.modes),
            "seed": self.seed,
            "track_bounds": self.track_bounds,
            "bound_method": self.bound_method,
        }

    @classmethod
    def from_dict(cls, payload) -> "ChurnCampaignConfig":
        """Rebuild a configuration from a :meth:`to_dict` payload."""
        return cls(
            churn_levels=tuple(payload["churn_levels"]),
            epochs=int(payload["epochs"]),
            trees_per_level=int(payload["trees_per_level"]),
            size=int(payload["size"]),
            load=float(payload["load"]),
            homogeneous=bool(payload["homogeneous"]),
            policy=str(payload["policy"]),
            magnitude=float(payload["magnitude"]),
            quiet_probability=float(payload["quiet_probability"]),
            modes=tuple(payload["modes"]),
            seed=int(payload["seed"]),
            track_bounds=bool(payload.get("track_bounds", False)),
            bound_method=str(payload.get("bound_method", "mixed")),
        )


@dataclass
class ChurnRecord:
    """Outcome of one (churn level, base tree, mode) trajectory solve."""

    churn: float
    tree_seed: int
    mode: str
    mean_cost: float
    solved_epochs: int
    epochs: int
    replicas_moved: int
    requests_reassigned: float
    strategies: Dict[str, int]
    runtime: float
    #: mean per-epoch LP lower bound / cost-vs-bound gap, ``nan`` unless the
    #: campaign ran with ``track_bounds=True``.
    mean_bound: float = math.nan
    mean_gap: float = math.nan

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload (part of the result protocol)."""
        return {
            "churn": self.churn,
            "tree_seed": self.tree_seed,
            "mode": self.mode,
            "mean_cost": encode_float(self.mean_cost),
            "solved_epochs": self.solved_epochs,
            "epochs": self.epochs,
            "replicas_moved": self.replicas_moved,
            "requests_reassigned": self.requests_reassigned,
            "strategies": dict(self.strategies),
            "runtime": self.runtime,
            "mean_bound": encode_float(self.mean_bound),
            "mean_gap": encode_float(self.mean_gap),
        }

    @classmethod
    def from_dict(cls, payload) -> "ChurnRecord":
        """Rebuild a record from a :meth:`to_dict` payload."""
        return cls(
            churn=float(payload["churn"]),
            tree_seed=int(payload["tree_seed"]),
            mode=str(payload["mode"]),
            mean_cost=decode_float(payload["mean_cost"]),
            solved_epochs=int(payload["solved_epochs"]),
            epochs=int(payload["epochs"]),
            replicas_moved=int(payload["replicas_moved"]),
            requests_reassigned=float(payload["requests_reassigned"]),
            strategies={
                name: int(count)
                for name, count in payload.get("strategies", {}).items()
            },
            runtime=float(payload.get("runtime", 0.0)),
            mean_bound=decode_float(payload.get("mean_bound", "nan")),
            mean_gap=decode_float(payload.get("mean_gap", "nan")),
        )


@register_result
@dataclass
class ChurnCampaignResult(ResultBase):
    """All churn records plus the cost-vs-stability aggregations."""

    payload_type = "churn_campaign_result"

    config: ChurnCampaignConfig
    records: List[ChurnRecord]

    # ------------------------------------------------------------------ #
    def records_for(self, churn: float, mode: str) -> List[ChurnRecord]:
        """Records of one churn level under one mode."""
        return [
            record
            for record in self.records
            if record.mode == mode and abs(record.churn - churn) < 1e-9
        ]

    def _series(self, value) -> Dict[str, Dict[float, float]]:
        series: Dict[str, Dict[float, float]] = {}
        for mode in self.config.modes:
            entries: Dict[float, float] = {}
            for churn in self.config.churn_levels:
                records = self.records_for(churn, mode)
                if records:
                    entries[float(churn)] = sum(map(value, records)) / len(records)
            series[mode] = entries
        return series

    def cost_series(self) -> Dict[str, Dict[float, float]]:
        """Mean per-epoch cost by churn level, one series per mode."""
        return self._series(lambda record: record.mean_cost)

    def gap_series(self) -> Dict[str, Dict[float, float]]:
        """Mean cost-vs-LP-bound gap by churn level (``track_bounds`` runs)."""
        return self._series(lambda record: record.mean_gap)

    def stability_series(self) -> Dict[str, Dict[float, float]]:
        """Mean requests re-routed per epoch by churn level and mode."""
        return self._series(
            lambda record: record.requests_reassigned / max(1, record.epochs - 1)
        )

    def replica_churn_series(self) -> Dict[str, Dict[float, float]]:
        """Mean replicas moved (added + dropped) per epoch by churn level."""
        return self._series(
            lambda record: record.replicas_moved / max(1, record.epochs - 1)
        )

    def cost_table(self) -> str:
        """ASCII table of the cost series (x axis: churn intensity)."""
        return series_table(self.cost_series(), x_label="churn")

    def gap_table(self) -> str:
        """ASCII table of the cost-vs-bound gap series."""
        return series_table(self.gap_series(), x_label="churn")

    def stability_table(self) -> str:
        """ASCII table of the request re-routing series."""
        return series_table(self.stability_series(), x_label="churn")

    def replica_churn_table(self) -> str:
        """ASCII table of the replica movement series."""
        return series_table(self.replica_churn_series(), x_label="churn")

    def describe(self) -> str:
        """Short campaign summary."""
        kind = "homogeneous" if self.config.homogeneous else "heterogeneous"
        return (
            f"{len(self.records)} trajectory solves ({kind}, size {self.config.size}, "
            f"{self.config.epochs} epochs, {self.config.trees_per_level} trees per "
            f"churn level, modes {'/'.join(self.config.modes)})"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload (unified result protocol)."""

        def encode_series(series: Dict[str, Dict[float, float]]):
            return {
                mode: {str(churn): encode_float(value) for churn, value in entries.items()}
                for mode, entries in series.items()
            }

        payload = {
            "config": self.config.to_dict(),
            "records": [record.to_dict() for record in self.records],
            "cost": encode_series(self.cost_series()),
            "stability": encode_series(self.stability_series()),
            "replica_churn": encode_series(self.replica_churn_series()),
        }
        if self.config.track_bounds:
            payload["gap"] = encode_series(self.gap_series())
        return self._tagged(payload)

    @classmethod
    def from_dict(cls, payload) -> "ChurnCampaignResult":
        """Rebuild a churn-campaign result from a :meth:`to_dict` payload.

        The aggregated series are derived data and recomputed from the
        records rather than read back.
        """
        return cls(
            config=ChurnCampaignConfig.from_dict(payload["config"]),
            records=[ChurnRecord.from_dict(entry) for entry in payload["records"]],
        )


def _churn_trajectory_epochs(churn: float, tree_seed: int, config: ChurnCampaignConfig):
    """Build one trajectory's epochs (deterministic given the seeds).

    Regenerated per mode / per bound run (identical demand every time) to
    keep the recorded runtimes honest: sharing epoch objects would hand
    later runs the earlier runs' warm tree-index caches.
    """
    from repro.workloads.dynamic import rate_churn

    tree = TreeGenerator(tree_seed).generate(
        GeneratorConfig(
            size=config.size,
            target_load=config.load,
            homogeneous=config.homogeneous,
        )
    )
    base = ReplicaPlacementProblem(
        tree=tree, kind=config.problem_kind(), name=f"churn{churn:g}"
    )
    return rate_churn(
        base,
        config.epochs,
        churn=float(churn),
        magnitude=config.magnitude,
        quiet_probability=config.quiet_probability,
        seed=tree_seed,
    )


def _evaluate_churn_entry(
    entry: Tuple[float, int], config: ChurnCampaignConfig
) -> List[ChurnRecord]:
    """Solve one (churn level, base tree) trajectory under every mode."""
    from repro.api import bound_sequence, solve_sequence

    churn, tree_seed = entry
    bounds = None
    if config.track_bounds:
        # The bounds depend on the epochs only, not on the re-solve mode:
        # compute them once per trajectory and share across mode records.
        bounds = bound_sequence(
            _churn_trajectory_epochs(churn, tree_seed, config),
            policy=config.policy,
            method=config.bound_method,
        )
        finite = [value for value in bounds.values if math.isfinite(value)]
        mean_bound = sum(finite) / len(finite) if finite else math.nan

    records: List[ChurnRecord] = []
    for mode in config.modes:
        epochs = _churn_trajectory_epochs(churn, tree_seed, config)
        start = time.perf_counter()
        result = solve_sequence(epochs, policy=config.policy, mode=mode)
        runtime = time.perf_counter() - start
        costs = [cost for cost in result.costs if cost is not None]
        migrations = result.total_migrations()
        mean_gap = math.nan
        if bounds is not None:
            gaps = [gap for gap in bounds.gaps(result.costs) if gap is not None]
            mean_gap = sum(gaps) / len(gaps) if gaps else math.nan
        records.append(
            ChurnRecord(
                churn=float(churn),
                tree_seed=tree_seed,
                mode=mode,
                mean_cost=sum(costs) / len(costs) if costs else math.nan,
                solved_epochs=result.solved_epochs,
                epochs=config.epochs,
                replicas_moved=migrations["replicas_added"]
                + migrations["replicas_dropped"],
                requests_reassigned=migrations["requests_reassigned"],
                strategies=result.strategy_counts(),
                runtime=runtime,
                mean_bound=mean_bound if bounds is not None else math.nan,
                mean_gap=mean_gap,
            )
        )
    return records


def _churn_chunk(
    chunk: List[Tuple[float, int]], *, config: ChurnCampaignConfig
) -> List[List[ChurnRecord]]:
    """Worker-side evaluation of a contiguous chunk of trajectory entries."""
    return [_evaluate_churn_entry(entry, config) for entry in chunk]


def run_churn_campaign(
    config: ChurnCampaignConfig, *, workers: Optional[int] = None
) -> ChurnCampaignResult:
    """Sweep churn intensity and solve each trajectory under every mode.

    Trajectories are deterministic given ``config.seed``: the same epochs
    are handed to every mode, so the per-level series are directly
    comparable (identical demand, different re-solve strategies).

    Parameters
    ----------
    workers:
        ``None`` or ``<= 1`` evaluates sequentially in-process.  Larger
        values fan the independent (churn level, base tree) trajectories
        out over the shared :func:`repro.api.chunked_pool_map` process
        pool, one contiguous chunk per worker; records come back in the
        same deterministic order as a sequential run.
    """
    plan: List[Tuple[float, int]] = []
    for level_index, churn in enumerate(config.churn_levels):
        for tree_index in range(config.trees_per_level):
            plan.append((float(churn), config.seed + 1000 * level_index + tree_index))

    if workers is None or workers <= 1 or not plan:
        grouped = [_evaluate_churn_entry(entry, config) for entry in plan]
    else:
        from functools import partial

        from repro.api import chunked_pool_map

        grouped = chunked_pool_map(partial(_churn_chunk, config=config), plan, workers)

    records = [record for group in grouped for record in group]
    return ChurnCampaignResult(config=config, records=records)


def _lower_bound(problem: ReplicaPlacementProblem, config: CampaignConfig) -> float:
    method = config.lower_bound_method
    if method == "none":
        return math.nan
    if method == "trivial":
        from repro.core.costs import trivial_lower_bound

        return trivial_lower_bound(problem)
    from repro.lp.bounds import lp_lower_bound, rational_relaxation_bound

    if method == "mixed":
        return lp_lower_bound(problem, time_limit=config.lp_time_limit).value
    if method == "rational":
        return rational_relaxation_bound(problem).value
    raise ValueError(f"unknown lower bound method {method!r}")
