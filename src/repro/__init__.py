"""repro - Replica placement strategies in tree networks.

This package reproduces the system described in

    Anne Benoit, Veronika Rehn, Yves Robert,
    "Strategies for Replica Placement in Tree Networks",
    INRIA RR-6040 / IPDPS 2007.

It provides:

* a tree-network substrate (clients, internal nodes, links, QoS and
  bandwidth attributes) in :mod:`repro.core`,
* the three access policies *Closest*, *Upwards* and *Multiple*,
* the optimal polynomial algorithm for the Multiple policy on homogeneous
  platforms (paper Section 4.1) in :mod:`repro.algorithms`,
* the eight polynomial heuristics of paper Section 6 plus the MixedBest
  combiner,
* integer/rational linear-programming formulations and the LP-based lower
  bound of paper Section 5 in :mod:`repro.lp`,
* workload generators and the paper's reference trees in
  :mod:`repro.workloads`,
* the experiment harness regenerating paper Figures 9-12 and Table 1 in
  :mod:`repro.experiments`,
* a stateful, cache-owning session API
  (:class:`~repro.session.PlacementSession`) with a unified
  ``describe()``/``to_dict()``/``to_json()`` result protocol in
  :mod:`repro.session` and :mod:`repro.core.results`,
* a multi-tenant serving subsystem (:mod:`repro.serving`): a
  fingerprint-keyed LRU pool of resident sessions behind a JSON request
  protocol over stdio and HTTP (``repro serve``), with snapshot
  persistence across restarts and a ``connect()`` client proxy,
* extensions of paper Section 8 (multiple objects, richer objective
  functions) in :mod:`repro.multiobject` and :mod:`repro.objectives`.

Quickstart
----------

>>> from repro import TreeBuilder, Policy, solve
>>> tree = (TreeBuilder()
...         .add_node("root", capacity=10)
...         .add_node("n1", capacity=10, parent="root")
...         .add_client("c1", requests=7, parent="n1")
...         .add_client("c2", requests=5, parent="n1")
...         .build())
>>> solution = solve(tree, policy=Policy.MULTIPLE)
>>> sorted(solution.placement.replicas)
['n1', 'root']
"""

from __future__ import annotations

from repro._version import __version__, __paper__
from repro.core.tree import TreeNetwork, InternalNode, Client, Link
from repro.core.builder import TreeBuilder
from repro.core.policies import Policy
from repro.core.problem import (
    ProblemKind,
    ReplicaPlacementProblem,
    replica_cost_problem,
    replica_counting_problem,
)
from repro.core.solution import Assignment, Placement, Solution
from repro.core.validation import validate_solution, ValidationReport
from repro.core.costs import placement_cost, request_lower_bound
from repro.core.results import result_from_dict, result_from_json
from repro.session import (
    PlacementSession,
    SolveResult,
    BoundResult,
    CompareResult,
)
from repro.api import (
    solve,
    solve_many,
    solve_sequence,
    SequenceResult,
    bound_sequence,
    BoundSequenceResult,
    compare_policies,
    lower_bound,
)
from repro.serving import (
    PoolStats,
    SessionPool,
    connect,
    problem_fingerprint,
)

__all__ = [
    "__version__",
    "__paper__",
    "TreeNetwork",
    "InternalNode",
    "Client",
    "Link",
    "TreeBuilder",
    "Policy",
    "ProblemKind",
    "ReplicaPlacementProblem",
    "replica_cost_problem",
    "replica_counting_problem",
    "Assignment",
    "Placement",
    "Solution",
    "validate_solution",
    "ValidationReport",
    "placement_cost",
    "request_lower_bound",
    "PlacementSession",
    "SolveResult",
    "BoundResult",
    "CompareResult",
    "result_from_dict",
    "result_from_json",
    "solve",
    "solve_many",
    "solve_sequence",
    "SequenceResult",
    "bound_sequence",
    "BoundSequenceResult",
    "compare_policies",
    "lower_bound",
    "SessionPool",
    "PoolStats",
    "connect",
    "problem_fingerprint",
]
