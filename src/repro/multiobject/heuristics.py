"""Greedy heuristic for the multi-object problem.

The paper notes (Section 8.1) that designing efficient heuristics for
several object types is a challenging open problem; the natural baseline it
suggests -- and the one implemented here -- is *sequential* placement:

1. order the objects by decreasing total demand (placing the heavy objects
   first gives them first pick of the capacity);
2. for each object, build a single-object Replica Cost instance on the
   *residual* capacities left by the previous objects and solve it with a
   Multiple-policy heuristic (MultipleGreedy by default, since it never
   fails on a feasible residual instance);
3. accumulate the per-object placements and assignments.

The sequential greedy is not optimal (capacity fragmentation across objects
is ignored) but it is complete in the following weak sense: if it fails, the
ordering heuristics failed, not necessarily the instance -- compare with the
joint lower bound of :mod:`repro.multiobject.lp` to judge the gap.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.algorithms.base import get_heuristic
from repro.core.exceptions import InfeasibleError
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.tree import Client, InternalNode, NodeId, TreeNetwork
from repro.multiobject.model import MultiObjectProblem, MultiObjectSolution

__all__ = ["sequential_greedy"]


def sequential_greedy(
    problem: MultiObjectProblem,
    *,
    heuristic: str = "MG",
    object_order: Optional[Tuple[str, ...]] = None,
) -> MultiObjectSolution:
    """Place objects one at a time on the residual capacities.

    Parameters
    ----------
    heuristic:
        Name of the single-object (Multiple-policy) heuristic used for each
        object.
    object_order:
        Explicit placement order; defaults to decreasing total demand.

    Raises
    ------
    InfeasibleError
        When some object cannot be placed on the residual capacities.
    """
    tree = problem.tree
    solver = get_heuristic(heuristic)

    if object_order is None:
        object_order = tuple(
            sorted(problem.objects, key=lambda oid: -problem.object_total(oid))
        )

    residual: Dict[NodeId, float] = {
        node.id: node.capacity for node in tree.nodes()
    }
    replicas = set()
    amounts: Dict[Tuple[NodeId, str, NodeId], float] = {}

    for object_id in object_order:
        demand = {
            client.id: problem.request(client.id, object_id) for client in tree.clients()
        }
        if sum(demand.values()) <= 0:
            continue
        sub_tree = _tree_with(tree, residual, demand, problem, object_id)
        sub_problem = ReplicaPlacementProblem(tree=sub_tree, kind=ProblemKind.GENERAL)
        try:
            solution = solver.solve(sub_problem)
        except InfeasibleError as error:
            raise InfeasibleError(
                f"object {object_id!r} cannot be placed on the residual capacities: {error}"
            ) from error
        for node_id in solution.placement:
            replicas.add((node_id, object_id))
        for (client_id, server_id), value in solution.assignment.items():
            amounts[(client_id, object_id, server_id)] = value
            residual[server_id] -= value

    return MultiObjectSolution(
        replicas=frozenset(replicas),
        amounts=amounts,
        algorithm=f"sequential-{heuristic}",
    )


def _tree_with(
    tree: TreeNetwork,
    residual: Dict[NodeId, float],
    demand: Dict[NodeId, float],
    problem: MultiObjectProblem,
    object_id: str,
) -> TreeNetwork:
    """Single-object view of the instance: residual capacities, one demand."""
    nodes = [
        InternalNode(
            id=node.id,
            capacity=max(residual[node.id], 0.0),
            storage_cost=problem.storage_cost(node.id, object_id),
        )
        for node in tree.nodes()
    ]
    clients = [
        Client(id=client.id, requests=demand.get(client.id, 0.0), qos=client.qos)
        for client in tree.clients()
    ]
    return TreeNetwork(nodes, clients, list(tree.links()))
