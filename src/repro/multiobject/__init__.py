"""Multi-object extension (paper Section 8.1).

Clients request several object types; a node may host replicas of several
objects, its processing capacity being shared across all of them, and a
request of type ``k`` can only be served by a node holding a replica of
``k``.  The objective is the total storage cost of all replicas of all
types.

* :mod:`repro.multiobject.model` -- the problem and solution data model;
* :mod:`repro.multiobject.heuristics` -- a sequential greedy that places
  each object with the single-object machinery on the residual capacities;
* :mod:`repro.multiobject.lp` -- the joint ILP / LP lower bound.
"""

from repro.multiobject.model import (
    ObjectType,
    MultiObjectProblem,
    MultiObjectSolution,
    validate_multi_object_solution,
)
from repro.multiobject.heuristics import sequential_greedy
from repro.multiobject.lp import multi_object_lower_bound, multi_object_exact

__all__ = [
    "ObjectType",
    "MultiObjectProblem",
    "MultiObjectSolution",
    "validate_multi_object_solution",
    "sequential_greedy",
    "multi_object_lower_bound",
    "multi_object_exact",
]
