"""Joint (integer) linear program for the multi-object problem.

Variables (Multiple policy, following paper Sections 5.2 and 8.1):

* ``x_{j,k}`` -- binary: node ``j`` holds a replica of object ``k``;
* ``y_{i,j,k}`` -- requests of client ``i`` for object ``k`` served by node
  ``j`` (``j`` must be an ancestor of ``i``).

Constraints:

* conservation: for every (client, object) with positive demand,
  ``sum_j y_{i,j,k} = r_i^(k)``;
* per-object gating: ``sum_i y_{i,j,k} <= W_j x_{j,k}`` (a node can only
  serve objects it replicates);
* shared capacity: ``sum_k sum_i y_{i,j,k} <= W_j`` (the paper's "sum on all
  the object types");
* objective: ``min sum_{j,k} s_{j,k} x_{j,k}``.

:func:`multi_object_lower_bound` relaxes the ``y`` variables to rationals
(keeping ``x`` integral), mirroring the single-object refined bound;
:func:`multi_object_exact` solves the full ILP and reconstructs a
:class:`~repro.multiobject.model.MultiObjectSolution`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.core.exceptions import InfeasibleError, SolverError
from repro.core.tree import NodeId
from repro.multiobject.model import MultiObjectProblem, MultiObjectSolution

__all__ = ["multi_object_lower_bound", "multi_object_exact"]


class _MultiObjectProgram:
    """Index the variables and assemble the constraint matrix."""

    def __init__(self, problem: MultiObjectProblem):
        self.problem = problem
        tree = problem.tree
        self.x_pairs: List[Tuple[NodeId, str]] = [
            (node_id, object_id)
            for node_id in tree.node_ids
            for object_id in problem.objects
        ]
        self.x_index = {pair: i for i, pair in enumerate(self.x_pairs)}
        self.y_triples: List[Tuple[NodeId, str, NodeId]] = []
        for (client_id, object_id), value in problem.requests.items():
            for server_id in tree.ancestors(client_id):
                self.y_triples.append((client_id, object_id, server_id))
        offset = len(self.x_pairs)
        self.y_index = {triple: offset + i for i, triple in enumerate(self.y_triples)}
        self.num_variables = len(self.x_pairs) + len(self.y_triples)
        self._build()

    def _build(self) -> None:
        problem, tree = self.problem, self.problem.tree
        rows, cols, data, lower, upper = [], [], [], [], []
        row = 0

        def add(entries, lo, hi):
            nonlocal row
            for col, coeff in entries:
                rows.append(row)
                cols.append(col)
                data.append(coeff)
            lower.append(lo)
            upper.append(hi)
            row += 1

        # conservation per (client, object)
        for (client_id, object_id), value in problem.requests.items():
            entries = [
                (self.y_index[(client_id, object_id, server_id)], 1.0)
                for server_id in tree.ancestors(client_id)
            ]
            add(entries, value, value)

        # per-object gating and shared capacity per node
        for node_id in tree.node_ids:
            capacity = problem.capacity(node_id)
            shared_entries = []
            for object_id in problem.objects:
                entries = []
                for (client_id, obj, server_id) in self.y_triples:
                    if server_id == node_id and obj == object_id:
                        entries.append((self.y_index[(client_id, obj, server_id)], 1.0))
                        shared_entries.append((self.y_index[(client_id, obj, server_id)], 1.0))
                entries.append((self.x_index[(node_id, object_id)], -capacity))
                add(entries, -math.inf, 0.0)
            if shared_entries:
                add(shared_entries, -math.inf, capacity)

        self.matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(row, self.num_variables)
        )
        self.lower = np.array(lower)
        self.upper = np.array(upper)

        self.objective = np.zeros(self.num_variables)
        for (node_id, object_id), index in self.x_index.items():
            self.objective[index] = problem.storage_cost(node_id, object_id)

        self.var_lower = np.zeros(self.num_variables)
        self.var_upper = np.empty(self.num_variables)
        self.var_upper[: len(self.x_pairs)] = 1.0
        for (client_id, object_id, _server), index in self.y_index.items():
            self.var_upper[index] = problem.request(client_id, object_id)

    def solve(self, *, integral_assignment: bool) -> optimize.OptimizeResult:
        integrality = np.zeros(self.num_variables)
        integrality[: len(self.x_pairs)] = 1
        if integral_assignment:
            integrality[len(self.x_pairs):] = 1
        return optimize.milp(
            c=self.objective,
            constraints=[optimize.LinearConstraint(self.matrix, self.lower, self.upper)],
            integrality=integrality,
            bounds=optimize.Bounds(self.var_lower, self.var_upper),
        )


def multi_object_lower_bound(problem: MultiObjectProblem) -> float:
    """Refined lower bound: integral replicas, rational assignments.

    Returns ``math.inf`` when even the joint relaxation is infeasible.
    """
    program = _MultiObjectProgram(problem)
    result = program.solve(integral_assignment=False)
    if result.success:
        return float(result.fun)
    if result.status == 2:
        return math.inf
    raise SolverError(f"multi-object lower bound failed: {result.message}")


def multi_object_exact(problem: MultiObjectProblem) -> MultiObjectSolution:
    """Optimal multi-object placement via the joint ILP (small instances).

    Assignment variables are required to be integral only when every request
    rate is integral (the constraint matrix of the assignment sub-problem is
    a transportation polytope, so with integral data the continuous optimum
    can always be rounded; with fractional request rates a fractional split
    is the intended semantics of the Multiple policy).
    """
    program = _MultiObjectProgram(problem)
    integral_requests = all(
        abs(value - round(value)) <= 1e-9 for value in problem.requests.values()
    )
    result = program.solve(integral_assignment=integral_requests)
    if not result.success:
        if result.status == 2:
            raise InfeasibleError("the multi-object instance is infeasible")
        raise SolverError(f"multi-object ILP failed: {result.message}")

    values = np.asarray(result.x)
    replicas = {
        pair for pair, index in program.x_index.items() if values[index] > 0.5
    }
    amounts: Dict[Tuple[NodeId, str, NodeId], float] = {}
    for triple, index in program.y_index.items():
        value = float(values[index])
        if value > 1e-6:
            amounts[triple] = round(value, 9)
    return MultiObjectSolution(
        replicas=frozenset(replicas), amounts=amounts, algorithm="multiobject-ilp"
    )
