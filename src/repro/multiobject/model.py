"""Data model of the multi-object Replica Placement problem (Section 8.1).

Compared to the single-object problem:

* there is a set of object types ``k``; client ``i`` issues ``r_i^(k)``
  requests for object ``k`` (possibly zero);
* a node may hold replicas of several objects; serving a request of type
  ``k`` requires a replica of type ``k`` on the serving node;
* the processing capacity ``W_j`` of a node is shared by all the requests it
  serves, whatever their type (the paper's "sum on all the object types");
* the storage cost is paid per (node, object) replica, and may depend on the
  object (e.g. proportional to the object size);
* the objective is the total storage cost over all replicas of all types.

Only the Multiple access policy is modelled for several objects (the paper
notes all three policies extend naturally; Multiple is the one its
experiments would use, and it keeps the feasibility story identical to the
single-object case per object type).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.exceptions import ReproError, TreeStructureError
from repro.core.tree import NodeId, TreeNetwork

__all__ = [
    "ObjectType",
    "MultiObjectProblem",
    "MultiObjectSolution",
    "validate_multi_object_solution",
]

_TOL = 1e-6


@dataclass(frozen=True)
class ObjectType:
    """One replicated object type.

    ``size`` scales the storage cost of its replicas: placing a replica of
    object ``k`` on node ``j`` costs ``size_k * s_j`` by default.
    """

    id: str
    size: float = 1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ReproError(f"object {self.id!r} must have a positive size")


class MultiObjectProblem:
    """A multi-object Replica Placement instance.

    Parameters
    ----------
    tree:
        The distribution tree.
    objects:
        The object types.
    requests:
        Mapping ``(client_id, object_id) -> requests per time unit``;
        missing pairs mean zero requests.
    storage_costs:
        Optional mapping ``(node_id, object_id) -> cost`` overriding the
        default ``object.size * node.storage_cost``.
    """

    def __init__(
        self,
        tree: TreeNetwork,
        objects: Iterable[ObjectType],
        requests: Mapping[Tuple[NodeId, str], float],
        *,
        storage_costs: Optional[Mapping[Tuple[NodeId, str], float]] = None,
    ) -> None:
        self.tree = tree
        self.objects: Dict[str, ObjectType] = {}
        for obj in objects:
            if obj.id in self.objects:
                raise ReproError(f"duplicate object type {obj.id!r}")
            self.objects[obj.id] = obj
        if not self.objects:
            raise ReproError("a multi-object instance needs at least one object type")

        self.requests: Dict[Tuple[NodeId, str], float] = {}
        for (client_id, object_id), value in requests.items():
            if not tree.is_client(client_id):
                raise TreeStructureError(f"unknown client {client_id!r} in requests")
            if object_id not in self.objects:
                raise ReproError(f"unknown object type {object_id!r} in requests")
            if value < 0:
                raise ReproError("request rates must be non-negative")
            if value > 0:
                self.requests[(client_id, object_id)] = float(value)
        self._storage_costs = dict(storage_costs or {})

    # ------------------------------------------------------------------ #
    def request(self, client_id: NodeId, object_id: str) -> float:
        """Requests of ``client_id`` for object ``object_id``."""
        return self.requests.get((client_id, object_id), 0.0)

    def client_total(self, client_id: NodeId) -> float:
        """Total requests of a client across all objects."""
        return sum(v for (c, _o), v in self.requests.items() if c == client_id)

    def object_total(self, object_id: str) -> float:
        """Total requests for one object across all clients."""
        return sum(v for (_c, o), v in self.requests.items() if o == object_id)

    def storage_cost(self, node_id: NodeId, object_id: str) -> float:
        """Cost of placing a replica of ``object_id`` on ``node_id``."""
        override = self._storage_costs.get((node_id, object_id))
        if override is not None:
            return override
        return self.objects[object_id].size * float(self.tree.node(node_id).storage_cost)

    def capacity(self, node_id: NodeId) -> float:
        """Shared processing capacity of a node."""
        return float(self.tree.node(node_id).capacity)

    def load_factor(self) -> float:
        """Total requests (all objects) over total capacity."""
        capacity = self.tree.total_capacity()
        total = sum(self.requests.values())
        return total / capacity if capacity > 0 else float("inf")

    def describe(self) -> str:
        """One-line description."""
        return (
            f"multi-object instance: {len(self.objects)} objects, "
            f"{self.tree.size} tree elements, lambda={self.load_factor():.3f}"
        )


@dataclass
class MultiObjectSolution:
    """Replicas per (node, object) and the associated request assignment."""

    replicas: frozenset  # of (node_id, object_id)
    amounts: Dict[Tuple[NodeId, str, NodeId], float] = field(default_factory=dict)
    algorithm: str = "unknown"

    def cost(self, problem: MultiObjectProblem) -> float:
        """Total storage cost of the placement."""
        return sum(problem.storage_cost(node_id, object_id) for node_id, object_id in self.replicas)

    def replica_count(self) -> int:
        """Number of (node, object) replicas."""
        return len(self.replicas)

    def server_load(self, node_id: NodeId) -> float:
        """Total requests (all objects) served by a node."""
        return sum(
            value for (_c, _o, server), value in self.amounts.items() if server == node_id
        )

    def objects_on(self, node_id: NodeId) -> Tuple[str, ...]:
        """Object types replicated on a node."""
        return tuple(sorted(obj for (node, obj) in self.replicas if node == node_id))


def validate_multi_object_solution(
    problem: MultiObjectProblem, solution: MultiObjectSolution
) -> List[str]:
    """Return the list of constraint violations (empty when valid)."""
    tree = problem.tree
    violations: List[str] = []

    served: Dict[Tuple[NodeId, str], float] = {}
    loads: Dict[NodeId, float] = {}
    for (client_id, object_id, server_id), value in solution.amounts.items():
        if value < -_TOL:
            violations.append(f"negative amount for {(client_id, object_id, server_id)!r}")
        if (server_id, object_id) not in solution.replicas:
            violations.append(
                f"{server_id!r} serves object {object_id!r} without a replica of it"
            )
        if not tree.is_client(client_id) or server_id not in tree.ancestors(client_id):
            violations.append(
                f"server {server_id!r} is not an ancestor of client {client_id!r}"
            )
        served[(client_id, object_id)] = served.get((client_id, object_id), 0.0) + value
        loads[server_id] = loads.get(server_id, 0.0) + value

    for (client_id, object_id), requested in problem.requests.items():
        got = served.get((client_id, object_id), 0.0)
        if abs(got - requested) > _TOL:
            violations.append(
                f"client {client_id!r} object {object_id!r}: assigned {got:g} of {requested:g}"
            )

    for node_id, load in loads.items():
        if load > problem.capacity(node_id) + _TOL:
            violations.append(
                f"node {node_id!r} serves {load:g} requests, capacity {problem.capacity(node_id):g}"
            )
    return violations
