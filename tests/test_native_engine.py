"""The native engine's loader, fallback, diagnostics and state plumbing.

Bit-for-bit solution equivalence lives in the engine-matrix suite
(``test_fast_state_equivalence.py``); this file covers what that matrix
cannot see: the build-on-first-use kernel loader and its graceful
degradation (``REPRO_NATIVE_DISABLE``, missing compilers), the one-line
fallback note, the ``repro doctor`` report, the kernel-computed QoS
threshold cache, and the :class:`~repro.algorithms.native_state.VecMap`
mapping views the heuristics read.  Every test here passes with *or*
without a C compiler -- the no-compiler CI job runs this file too.
"""

from __future__ import annotations

import json
from array import array

import pytest

from repro.algorithms import _native, native_state
from repro.algorithms.common import make_state, use_engine
from repro.algorithms.fast_state import FastRequestState
from repro.algorithms.native_state import (
    NativeRequestState,
    VecMap,
    native_kernels_available,
)
from repro.cli import main
from repro.core.constraints import ConstraintSet
from repro.core.problem import ReplicaPlacementProblem
from repro.workloads.generator import GeneratorConfig, TreeGenerator


@pytest.fixture
def fresh_loader():
    """Reset the loader memo and the fallback-note latch around a test."""
    _native._reset_for_tests()
    native_state._fallback_noted = False
    yield
    _native._reset_for_tests()
    native_state._fallback_noted = False


# --------------------------------------------------------------------------- #
# loader and fallback
# --------------------------------------------------------------------------- #
def test_kernel_status_shape():
    status = _native.kernel_status()
    assert set(status) >= {"available", "source", "cache_dir", "so_path", "error"}
    assert status["source"].endswith("kernels.c")
    if status["available"]:
        assert status["so_path"] and status["error"] is None
    else:
        assert status["error"]


def test_disable_env_forces_fast_fallback(fresh_loader, monkeypatch, capsys, small_problem):
    monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
    assert not native_kernels_available()
    state = make_state(small_problem, engine="native")
    assert isinstance(state, FastRequestState)
    assert not isinstance(state, NativeRequestState)
    # Exactly one stderr note, however many states the process builds.
    make_state(small_problem, engine="native")
    err = capsys.readouterr().err
    assert err.count("native kernels unavailable") == 1
    assert "falling back to the fast engine" in err


def test_disabled_native_engine_still_solves(fresh_loader, monkeypatch):
    from repro.algorithms.base import get_heuristic

    monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
    tree = TreeGenerator(5).generate(
        GeneratorConfig(size=30, target_load=0.4, homogeneous=True)
    )
    problem = ReplicaPlacementProblem(tree=tree, constraints=ConstraintSet.none())
    with use_engine("native"):
        native_solution = get_heuristic("MBU").try_solve(problem)
    with use_engine("fast"):
        fast_solution = get_heuristic("MBU").try_solve(problem)
    assert (native_solution is None) == (fast_solution is None)
    if native_solution is not None:
        assert native_solution.placement.replicas == fast_solution.placement.replicas


def test_loader_memo_resets(fresh_loader, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
    assert _native.load_kernels() is None
    assert _native.kernel_status()["error"] == "disabled by REPRO_NATIVE_DISABLE"
    monkeypatch.delenv("REPRO_NATIVE_DISABLE")
    # The memo survives env changes until explicitly reset...
    assert _native.load_kernels() is None
    _native._reset_for_tests()
    # ...after which availability reflects the environment again.
    assert native_kernels_available() == (_native._compiler() is not None)


def test_native_engine_name_always_valid(small_problem):
    # Whatever the toolchain, engine="native" must return a working state
    # (NativeRequestState subclasses FastRequestState, so this covers both).
    state = make_state(small_problem, engine="native")
    assert isinstance(state, FastRequestState)
    state.place("root")
    assert state.cover("root") == pytest.approx(12.0)


# --------------------------------------------------------------------------- #
# repro doctor
# --------------------------------------------------------------------------- #
def test_doctor_reports_engines_and_kernels(capsys):
    assert main(["doctor"]) == 0
    out = capsys.readouterr().out
    assert "default engine:" in out
    for engine in ("dict", "fast", "native"):
        assert f"engine {engine:>6}: ok" in out
    assert "native kernels:" in out


def test_doctor_json_payload(capsys):
    assert main(["doctor", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["type"] == "doctor"
    assert set(report["engines"]) == {"dict", "fast", "native"}
    assert all(entry["ok"] for entry in report["engines"].values())
    assert report["native_kernels"]["available"] == native_kernels_available()


def test_doctor_reports_fallback_when_disabled(fresh_loader, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
    assert main(["doctor", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["engines"]["native"]["ok"]
    assert report["engines"]["native"]["state"] == "FastRequestState"
    assert not report["native_kernels"]["available"]
    assert "REPRO_NATIVE_DISABLE" in report["native_kernels"]["error"]


# --------------------------------------------------------------------------- #
# kernel-backed internals (need a compiled kernel library)
# --------------------------------------------------------------------------- #
needs_kernels = pytest.mark.skipif(
    not native_kernels_available(), reason="native kernels unavailable"
)


@needs_kernels
def test_threshold_array_matches_python_thresholds():
    for qos, constraints in (
        ((2, 5), ConstraintSet.qos_distance()),
        ((2, 5), ConstraintSet.qos_latency()),
    ):
        tree = TreeGenerator(11).generate(
            GeneratorConfig(size=40, target_load=0.4, homogeneous=False, qos_hops=qos)
        )
        problem = ReplicaPlacementProblem(tree=tree, constraints=constraints)
        state = make_state(problem, engine="native")
        assert isinstance(state, NativeRequestState)
        # The kernel-computed array must equal the thresholds a fresh index
        # computes in pure Python (the state's own index caches the kernel
        # result, so comparing against it would be circular)...
        from repro.core.index import TreeIndex

        expected = TreeIndex.for_tree(tree).qos_depth_thresholds(problem)
        index = state._index
        cached = index.qos_threshold_cache[("native", constraints.qos_mode)]
        assert list(cached) == list(expected)
        # ...and the list mirror occupies the plain-mode slot.
        assert index.qos_threshold_cache[constraints.qos_mode] == list(expected)


@needs_kernels
def test_native_state_type_and_solution_round_trip(small_problem):
    from repro.core.policies import Policy

    state = make_state(small_problem, engine="native")
    assert isinstance(state, NativeRequestState)
    state.place("root")
    assert state.cover("root") == pytest.approx(12.0)
    solution = state.to_solution(Policy.MULTIPLE, "manual")
    assert solution.placement.replicas == frozenset({"root"})
    assert solution.assignment.total_assigned() == pytest.approx(12.0)


# --------------------------------------------------------------------------- #
# VecMap
# --------------------------------------------------------------------------- #
def test_vecmap_mapping_protocol():
    order = ("a", "b", "c")
    pos = {"a": 0, "b": 1, "c": 2}
    vec = array("d", [1.0, 2.0, 3.0])
    view = VecMap(vec, pos, order)

    assert view["b"] == 2.0
    assert "c" in view and "z" not in view
    assert list(view) == list(order)
    assert len(view) == 3
    assert view.get("a") == 1.0
    assert view.get("z", -1.0) == -1.0
    assert view.keys() == order
    assert view.values() == [1.0, 2.0, 3.0]
    assert dict(view.items()) == {"a": 1.0, "b": 2.0, "c": 3.0}
    assert view.copy() == {"a": 1.0, "b": 2.0, "c": 3.0}
    assert view == {"a": 1.0, "b": 2.0, "c": 3.0}

    # Writes go straight through to the positional array the kernels see.
    view["b"] = 9.5
    assert vec[1] == 9.5
    with pytest.raises(KeyError):
        view["missing"]
    with pytest.raises(KeyError):
        view["missing"] = 1.0


def test_vecmap_views_track_kernel_state(small_problem):
    state = make_state(small_problem, engine="native")
    before = dict(state.residual.copy())
    state.place("root")
    state.cover("root")
    after = {nid: state.residual[nid] for nid in state.tree.node_ids}
    assert before != after
    assert state.remaining.copy() == {cid: 0.0 for cid in state.tree.client_ids}
