"""Property-based cross-validation of :class:`repro.core.index.TreeIndex`.

The indexed flat-tree engine is only trustworthy if its interned arrays
agree with the authoritative dict-based :class:`TreeNetwork` queries.  These
tests draw a broad population of seeded random trees (plus the hand-built
fixtures) and assert, element by element, that every structural quantity the
index precomputes -- parents, depths, ancestor chains, subtree client spans,
subtree node spans, request sums, root latencies -- matches the tree.
"""

from __future__ import annotations

import math

import pytest

from repro.core.builder import TreeBuilder
from repro.core.exceptions import TreeStructureError
from repro.core.index import TreeIndex
from repro.workloads.generator import GeneratorConfig, TreeGenerator


def random_tree(seed: int):
    """One seeded random tree; parameters vary deterministically with the seed."""
    sizes = (12, 20, 33, 47, 60)
    attachments = ("spread", "leaves", "uniform")
    config = GeneratorConfig(
        size=sizes[seed % len(sizes)],
        target_load=0.2 + 0.15 * (seed % 5),
        homogeneous=seed % 2 == 0,
        client_attachment=attachments[seed % len(attachments)],
        max_children=2 + seed % 3,
        qos_hops=(2, 5) if seed % 3 == 0 else None,
        link_comm_time=1.0 if seed % 2 == 0 else 0.5,
    )
    return TreeGenerator(seed).generate(config)


#: 50+ seeded random trees, as required by the cross-validation suite.
RANDOM_SEEDS = list(range(52))


def assert_index_matches_tree(tree):
    index = TreeIndex(tree)

    # --- populations ---------------------------------------------------- #
    assert sorted(map(repr, index.node_order)) == sorted(map(repr, tree.node_ids))
    assert sorted(map(repr, index.client_order)) == sorted(map(repr, tree.client_ids))
    assert index.n_nodes == len(tree.node_ids)
    assert index.n_clients == len(tree.client_ids)
    assert index.height == tree.height()

    # --- interning round-trips ------------------------------------------ #
    for position, node_id in enumerate(index.node_order):
        assert index.node_pos[node_id] == position
        assert index.node_index(node_id) == position
    for position, client_id in enumerate(index.client_order):
        assert index.client_pos[client_id] == position
        assert index.client_index(client_id) == position

    # --- the client layout is exactly the tree's root client tuple ------- #
    assert index.client_order == tree.subtree_clients(tree.root)

    # --- parents, depths, ancestors ------------------------------------- #
    for element_id in tree.node_ids + tree.client_ids:
        assert index.parent_of(element_id) == tree.parent(element_id)
        assert index.depth_of(element_id) == tree.depth(element_id)
        assert index.ancestors_of(element_id) == tree.ancestors(element_id)

    # --- subtree spans: clients in identical order, nodes as sets -------- #
    for node_id in tree.node_ids:
        assert index.subtree_clients_of(node_id) == tree.subtree_clients(node_id)
        assert sorted(map(repr, index.subtree_nodes_of(node_id))) == sorted(
            map(repr, tree.subtree_nodes(node_id))
        )
        assert index.subtree_requests_of(node_id) == pytest.approx(
            tree.subtree_requests(node_id)
        )

    # --- request vectors ------------------------------------------------- #
    for position, client_id in enumerate(index.client_order):
        assert index.client_requests[position] == float(tree.client(client_id).requests)

    # --- root latencies -------------------------------------------------- #
    for element_id in tree.node_ids + tree.client_ids:
        expected = tree.latency(element_id, tree.root) if element_id != tree.root else 0.0
        assert index.root_latency_of(element_id) == pytest.approx(expected)


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_index_matches_tree_on_random_trees(seed):
    assert_index_matches_tree(random_tree(seed))


def test_index_matches_hand_built_trees(small_tree, hetero_tree, qos_tree, chain_tree):
    for tree in (small_tree, hetero_tree, qos_tree, chain_tree):
        assert_index_matches_tree(tree)


def test_index_is_cached_per_tree(small_tree):
    assert TreeIndex.for_tree(small_tree) is TreeIndex.for_tree(small_tree)
    # A rebuilt (equal) tree gets its own index.
    other = (
        TreeBuilder()
        .add_node("root", capacity=10)
        .add_node("n1", capacity=10, parent="root")
        .add_client("c1", requests=7, parent="n1")
        .add_client("c2", requests=3, parent="n1")
        .add_client("c3", requests=2, parent="root")
        .build()
    )
    assert TreeIndex.for_tree(other) is not TreeIndex.for_tree(small_tree)


def test_index_rejects_unknown_ids(small_tree):
    index = TreeIndex.for_tree(small_tree)
    with pytest.raises(TreeStructureError):
        index.node_index("nope")
    with pytest.raises(TreeStructureError):
        index.client_index("nope")
    with pytest.raises(TreeStructureError):
        index.subtree_clients_of("c1")  # clients have no node span
    with pytest.raises(TreeStructureError):
        index.root_latency_of("nope")


def test_qos_thresholds_match_eligible_servers():
    """The depth thresholds reproduce the per-pair QoS filtering exactly."""
    from repro.core.constraints import ConstraintSet
    from repro.core.problem import ReplicaPlacementProblem

    for seed in range(12):
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(
                size=40,
                target_load=0.4,
                homogeneous=seed % 2 == 0,
                qos_hops=(1, 4),
                link_comm_time=1.0 if seed % 2 == 0 else 2.0,
            )
        )
        for constraints in (ConstraintSet.qos_distance(), ConstraintSet.qos_latency()):
            problem = ReplicaPlacementProblem(tree=tree, constraints=constraints)
            index = TreeIndex.for_tree(tree)
            thresholds = index.qos_depth_thresholds(problem)
            for ci, client_id in enumerate(index.client_order):
                expected = tuple(
                    ancestor
                    for ancestor in tree.ancestors(client_id)
                    if problem.qos_satisfied(client_id, ancestor)
                )
                via_threshold = tuple(
                    ancestor
                    for ancestor in tree.ancestors(client_id)
                    if tree.depth(ancestor) >= thresholds[ci]
                )
                assert via_threshold == expected
                # eligible_servers (the memoised public query) agrees too.
                assert problem.eligible_servers(client_id) == expected


def test_infinite_qos_keeps_all_ancestors():
    from repro.core.constraints import ConstraintSet
    from repro.core.problem import ReplicaPlacementProblem

    tree = (
        TreeBuilder()
        .add_node("root", capacity=10)
        .add_node("mid", capacity=10, parent="root")
        .add_client("c", requests=5, parent="mid", qos=math.inf)
        .build()
    )
    problem = ReplicaPlacementProblem(tree=tree, constraints=ConstraintSet.qos_distance())
    assert problem.eligible_servers("c") == ("mid", "root")
