"""Reproduction of the paper's Section 3 / Section 4 example claims."""

from __future__ import annotations

import math

import pytest

from repro.core.costs import request_lower_bound
from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import replica_cost_problem, replica_counting_problem
from repro.lp.exact import exact_cost
from repro.workloads import reference_trees as rt


class TestFigure1:
    def test_variant_a_all_policies_feasible(self):
        problem = replica_counting_problem(rt.figure1_tree("a"))
        for policy in Policy.ordered():
            assert exact_cost(problem, policy) == 1

    def test_variant_b_closest_fails_upwards_succeeds(self):
        problem = replica_counting_problem(rt.figure1_tree("b"))
        with pytest.raises(InfeasibleError):
            exact_cost(problem, Policy.CLOSEST)
        assert exact_cost(problem, Policy.UPWARDS) == 2
        assert exact_cost(problem, Policy.MULTIPLE) == 2

    def test_variant_c_only_multiple_succeeds(self):
        problem = replica_counting_problem(rt.figure1_tree("c"))
        with pytest.raises(InfeasibleError):
            exact_cost(problem, Policy.CLOSEST)
        with pytest.raises(InfeasibleError):
            exact_cost(problem, Policy.UPWARDS)
        assert exact_cost(problem, Policy.MULTIPLE) == 2

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            rt.figure1_tree("z")


class TestFigure2UpwardsVsClosest:
    @pytest.mark.parametrize("n", [2, 4])
    def test_upwards_needs_three_replicas(self, n):
        problem = replica_counting_problem(rt.figure2_tree(n))
        assert exact_cost(problem, Policy.UPWARDS) == 3

    @pytest.mark.parametrize("n", [2, 4])
    def test_closest_needs_n_plus_two_replicas(self, n):
        problem = replica_counting_problem(rt.figure2_tree(n))
        assert exact_cost(problem, Policy.CLOSEST) == n + 2

    def test_gap_grows_with_n(self):
        gaps = []
        for n in (2, 5):
            problem = replica_counting_problem(rt.figure2_tree(n))
            gaps.append(
                exact_cost(problem, Policy.CLOSEST) / exact_cost(problem, Policy.UPWARDS)
            )
        assert gaps[1] > gaps[0]

    def test_structure(self):
        tree = rt.figure2_tree(3)
        assert len(tree.node_ids) == 2 * 3 + 2
        assert len(tree.client_ids) == 2 * 3 + 1
        assert tree.uniform_capacity() == 3


class TestFigure3MultipleVsUpwards:
    @pytest.mark.parametrize("n", [2, 3])
    def test_multiple_needs_n_plus_one(self, n):
        problem = replica_counting_problem(rt.figure3_tree(n))
        assert exact_cost(problem, Policy.MULTIPLE) == n + 1

    @pytest.mark.parametrize("n", [2, 3])
    def test_upwards_needs_two_n(self, n):
        problem = replica_counting_problem(rt.figure3_tree(n))
        assert exact_cost(problem, Policy.UPWARDS) == 2 * n

    def test_ratio_tends_to_two(self):
        n = 4
        problem = replica_counting_problem(rt.figure3_tree(n))
        ratio = exact_cost(problem, Policy.UPWARDS) / exact_cost(problem, Policy.MULTIPLE)
        assert ratio == pytest.approx(2 * n / (n + 1))


class TestFigure4Heterogeneous:
    def test_multiple_cost_is_two_n(self):
        problem = replica_cost_problem(rt.figure4_tree(5, 10))
        assert exact_cost(problem, Policy.MULTIPLE) == 10

    def test_upwards_must_buy_the_big_server(self):
        n, K = 5, 10
        problem = replica_cost_problem(rt.figure4_tree(n, K))
        cost = exact_cost(problem, Policy.UPWARDS)
        assert cost >= K * n  # the big server is unavoidable

    def test_gap_unbounded_in_k(self):
        n = 4
        ratios = []
        for K in (5, 50):
            problem = replica_cost_problem(rt.figure4_tree(n, K))
            ratios.append(
                exact_cost(problem, Policy.UPWARDS) / exact_cost(problem, Policy.MULTIPLE)
            )
        assert ratios[1] > ratios[0] * 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            rt.figure4_tree(1, 10)
        with pytest.raises(ValueError):
            rt.figure4_tree(5, 1)


class TestFigure5LowerBoundGap:
    def test_lower_bound_is_two_but_optimum_is_n_plus_one(self):
        n, capacity = 4, 8.0
        tree = rt.figure5_tree(n, capacity)
        problem = replica_counting_problem(tree)
        assert request_lower_bound(tree) == 2
        for policy in Policy.ordered():
            assert exact_cost(problem, policy) == n + 1


class TestReductionTrees:
    def test_three_partition_structure(self):
        tree = rt.three_partition_tree((10, 14, 16, 12, 13, 15), 40)
        assert len(tree.node_ids) == 2
        assert len(tree.client_ids) == 6
        # every client hangs off n1, the bottom of the chain
        assert all(tree.parent(cid) == "n1" for cid in tree.client_ids)

    def test_three_partition_yes_instance_solvable(self):
        tree = rt.three_partition_tree((10, 14, 16, 12, 13, 15), 40)
        problem = replica_cost_problem(tree)
        assert exact_cost(problem, Policy.UPWARDS) == pytest.approx(80)

    def test_three_partition_no_instance_unsolvable(self):
        tree = rt.three_partition_tree((11, 11, 11, 11, 11, 17), 36)
        problem = replica_cost_problem(tree)
        with pytest.raises(InfeasibleError):
            exact_cost(problem, Policy.UPWARDS)

    def test_three_partition_validation(self):
        with pytest.raises(ValueError):
            rt.three_partition_tree((1, 2), 3)

    def test_two_partition_yes_instance_cost(self):
        values = (3, 1, 1, 2, 2, 1)  # S = 10, balanced split exists
        problem = replica_cost_problem(rt.two_partition_tree(values))
        assert exact_cost(problem, Policy.MULTIPLE) == pytest.approx(11)
        assert exact_cost(problem, Policy.CLOSEST) == pytest.approx(11)

    def test_two_partition_no_instance_costs_more(self):
        values = (3, 3, 1)  # S = 7, no balanced split
        problem = replica_cost_problem(rt.two_partition_tree(values))
        assert exact_cost(problem, Policy.MULTIPLE) > 8 + 1e-9

    def test_two_partition_validation(self):
        with pytest.raises(ValueError):
            rt.two_partition_tree(())
