"""Equivalence suite for the vectorised LP assembly and epoch patching.

Pins three contracts of the LP fast path:

* :func:`repro.lp.build_program` produces programs **bit-identical** to the
  row-by-row :func:`repro.lp.build_program_reference` oracle -- canonical
  CSR matrix, row bounds, variable bounds, integrality, objective and
  labels -- across policies x bandwidth on/off x QoS modes x cost kinds;
* :meth:`repro.lp.LinearProgramData.with_requests` re-targets a program to
  a rate-only epoch fork bit-identically to a from-scratch rebuild (and
  refuses every diff that is not rate-only);
* :func:`repro.api.bound_sequence` returns, on every epoch of a dynamic
  trajectory, exactly the bound a from-scratch
  :func:`repro.api.lower_bound` computes.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.api import bound_sequence, lower_bound
from repro.core.constraints import ConstraintSet, QoSMode
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.tree import Link, TreeNetwork
from repro.lp import (
    VariableSpace,
    build_program,
    build_program_reference,
    lp_lower_bound,
    solve_program,
)
from repro.workloads import dynamic as trajectories
from repro.workloads.generator import GeneratorConfig, TreeGenerator
from tests.conftest import make_random_problem


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def canonical(matrix):
    """Copy of a sparse matrix in canonical CSR form."""
    out = matrix.tocsr().copy()
    out.sum_duplicates()
    out.sort_indices()
    return out


def assert_programs_identical(left, right):
    """Bit-for-bit equality of two assembled programs."""
    a, b = canonical(left.constraint_matrix), canonical(right.constraint_matrix)
    assert a.shape == b.shape
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)
    for attr in (
        "objective",
        "lower",
        "upper",
        "variable_lower",
        "variable_upper",
        "integrality",
    ):
        assert np.array_equal(getattr(left, attr), getattr(right, attr)), attr
    assert left.labels == right.labels
    assert left.policy is right.policy


def with_bandwidth(tree: TreeNetwork, bandwidth: float) -> TreeNetwork:
    """Copy of a tree with every link's bandwidth set to ``bandwidth``."""
    links = [
        Link(
            child=link.child,
            parent=link.parent,
            comm_time=link.comm_time,
            bandwidth=bandwidth,
        )
        for link in tree.links()
    ]
    return TreeNetwork(tree.nodes(), tree.clients(), links)


def campaign_instances():
    """Instances covering policies x bandwidth x QoS x kind x platforms."""
    instances = []
    for seed, qos, bandwidth in (
        (2, None, False),
        (3, "distance", False),
        (4, "latency", False),
        (5, None, True),
        (6, "distance", True),
        (7, "latency", True),
    ):
        homogeneous = seed % 2 == 0
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(
                size=45,
                target_load=0.5,
                homogeneous=homogeneous,
                client_attachment="uniform",
                qos_hops=(3, 6) if qos else None,
            )
        )
        if bandwidth:
            tree = with_bandwidth(tree, 60.0)
        if qos is None:
            constraints = ConstraintSet(enforce_bandwidth=bandwidth)
        elif qos == "distance":
            constraints = ConstraintSet.qos_distance(enforce_bandwidth=bandwidth)
        else:
            constraints = ConstraintSet.qos_latency(enforce_bandwidth=bandwidth)
        kind = ProblemKind.REPLICA_COUNTING if homogeneous else ProblemKind.REPLICA_COST
        instances.append(
            ReplicaPlacementProblem(tree=tree, constraints=constraints, kind=kind)
        )
    return instances


class _EvenDepthQoS(ConstraintSet):
    """Non-monotone QoS metric: only even-depth servers are eligible.

    Eligible chains are not bottom-up prefixes, so the vectorised Closest
    assembly must fall back to the reference builder.
    """

    def qos_metric(self, tree, client_id, server_id):
        return 0.0 if tree.depth(server_id) % 2 == 0 else math.inf


# --------------------------------------------------------------------------- #
# variable-space layout
# --------------------------------------------------------------------------- #
class TestVectorisedSpace:
    def test_pair_arrays_match_pairs_tuple(self):
        problem = make_random_problem(11, size=50, load=0.5, qos_hops=(3, 6))
        problem = dataclasses.replace(problem, constraints=ConstraintSet.qos_distance())
        space = VariableSpace(problem)
        assert space.prefix_chains
        clients, nodes = space.client_ids, space.node_ids
        rebuilt = [
            (clients[c], nodes[s])
            for c, s in zip(space.pair_client_pos, space.pair_server_pos)
        ]
        assert rebuilt == list(space.pairs)
        # Client-major layout: each client's pairs are one contiguous run.
        for ci, cid in enumerate(clients):
            lo, hi = space.client_pair_start[ci], space.client_pair_end[ci]
            assert [pair[0] for pair in space.pairs[lo:hi]] == [cid] * (hi - lo)
        # Pair requests mirror the problem's rates.
        for position, (cid, _sid) in enumerate(space.pairs):
            assert space.pair_requests[position] == problem.requests(cid)

    def test_pairs_follow_eligibility(self):
        problem = make_random_problem(12, size=40, load=0.4, qos_hops=(2, 5))
        problem = dataclasses.replace(problem, constraints=ConstraintSet.qos_latency())
        space = VariableSpace(problem)
        for cid in problem.tree.client_ids:
            expected = [(cid, sid) for sid in problem.eligible_servers(cid)]
            assert space.pairs_for_client(cid) == expected

    def test_non_prefix_subclass_detected(self):
        problem = make_random_problem(13, size=30, load=0.4, qos_hops=(2, 5))
        problem = dataclasses.replace(
            problem, constraints=_EvenDepthQoS(qos_mode=QoSMode.DISTANCE)
        )
        space = VariableSpace(problem)
        assert not space.prefix_chains
        # The pair list still matches the problem's eligibility answers.
        for cid in problem.tree.client_ids:
            expected = [(cid, sid) for sid in problem.eligible_servers(cid)]
            assert space.pairs_for_client(cid) == expected


# --------------------------------------------------------------------------- #
# builder equivalence
# --------------------------------------------------------------------------- #
class TestBuilderEquivalence:
    @pytest.mark.parametrize("policy", Policy.ordered())
    def test_bit_identical_across_campaign(self, policy):
        for problem in campaign_instances():
            fast = build_program(problem, policy)
            reference = build_program_reference(problem, policy)
            assert_programs_identical(fast, reference)

    @pytest.mark.parametrize("policy", Policy.ordered())
    def test_bit_identical_relaxations(self, small_problem, policy):
        fast = build_program(
            small_problem, policy, integral_placement=True, integral_assignment=False
        )
        reference = build_program_reference(
            small_problem, policy, integral_placement=True, integral_assignment=False
        )
        assert_programs_identical(fast, reference)

    def test_zero_request_clients_force_bounds_not_rows(self):
        tree = TreeGenerator(21).generate(GeneratorConfig(size=30, target_load=0.4))
        zero_client = tree.client_ids[0]
        tree = tree.with_requests({zero_client: 0.0})
        problem = ReplicaPlacementProblem(tree=tree)
        fast = build_program(problem, Policy.MULTIPLE)
        reference = build_program_reference(problem, Policy.MULTIPLE)
        assert_programs_identical(fast, reference)
        space = fast.space
        for sid in problem.eligible_servers(zero_client):
            assert fast.variable_upper[space.y_index(zero_client, sid)] == 0.0

    def test_closest_limit_raised_identically(self):
        problem = make_random_problem(2, size=40, load=0.3)
        with pytest.raises(ValueError):
            build_program(problem, Policy.CLOSEST, closest_constraint_limit=1)
        with pytest.raises(ValueError):
            build_program_reference(problem, Policy.CLOSEST, closest_constraint_limit=1)

    def test_non_prefix_closest_falls_back_to_reference(self):
        problem = make_random_problem(14, size=24, load=0.4, qos_hops=(2, 5))
        problem = dataclasses.replace(
            problem, constraints=_EvenDepthQoS(qos_mode=QoSMode.DISTANCE)
        )
        fast = build_program(problem, Policy.CLOSEST)
        reference = build_program_reference(problem, Policy.CLOSEST)
        assert_programs_identical(fast, reference)

    def test_non_prefix_vectorised_policies_still_match(self):
        problem = make_random_problem(15, size=24, load=0.4, qos_hops=(2, 5))
        problem = dataclasses.replace(
            problem,
            constraints=_EvenDepthQoS(
                qos_mode=QoSMode.DISTANCE, enforce_bandwidth=True
            ),
        )
        problem = dataclasses.replace(
            problem, tree=with_bandwidth(problem.tree, 40.0)
        )
        for policy in (Policy.UPWARDS, Policy.MULTIPLE):
            assert_programs_identical(
                build_program(problem, policy),
                build_program_reference(problem, policy),
            )

    def test_same_optimum_both_builders(self, small_problem):
        for policy in Policy.ordered():
            fast = solve_program(build_program(small_problem, policy))
            reference = solve_program(build_program_reference(small_problem, policy))
            assert fast.status == reference.status
            if fast.optimal:
                assert fast.objective == pytest.approx(reference.objective)


# --------------------------------------------------------------------------- #
# epoch patching
# --------------------------------------------------------------------------- #
class TestWithRequests:
    def _churned(self, problem, seed=5, scale=1.7):
        tree = problem.tree
        rng = np.random.default_rng(seed)
        changed = {
            cid: float(max(1, round(problem.requests(cid) * rng.uniform(0.4, scale))))
            for cid in tree.client_ids[::2]
        }
        return dataclasses.replace(problem, tree=tree.with_requests(changed))

    def test_multiple_patch_shares_matrix_and_matches_rebuild(self):
        problem = make_random_problem(31, size=50, load=0.5)
        epoch = self._churned(problem)
        program = build_program(
            problem, Policy.MULTIPLE, integral_placement=True, integral_assignment=False
        )
        patched = program.with_requests(epoch)
        fresh = build_program(
            epoch, Policy.MULTIPLE, integral_placement=True, integral_assignment=False
        )
        # The Multiple matrix is rate-independent: shared verbatim.
        assert patched.constraint_matrix is program.constraint_matrix
        assert_programs_identical(patched, fresh)
        assert patched.space.problem is epoch

    @pytest.mark.parametrize("policy", (Policy.UPWARDS, Policy.CLOSEST))
    def test_single_server_patch_rewrites_data(self, policy):
        problem = make_random_problem(32, size=40, load=0.4, qos_hops=(3, 6))
        problem = dataclasses.replace(
            problem,
            constraints=ConstraintSet.qos_distance(enforce_bandwidth=True),
            tree=with_bandwidth(problem.tree, 80.0),
        )
        epoch = self._churned(problem)
        program = build_program(problem, policy)
        patched = program.with_requests(epoch)
        fresh = build_program(epoch, policy)
        # Same sparsity pattern, different data vector (rates moved).
        assert patched.constraint_matrix is not program.constraint_matrix
        assert np.array_equal(
            patched.constraint_matrix.indices, program.constraint_matrix.indices
        )
        assert np.array_equal(
            patched.constraint_matrix.indptr, program.constraint_matrix.indptr
        )
        assert_programs_identical(patched, fresh)

    def test_chained_patches(self):
        problem = make_random_problem(33, size=40, load=0.5)
        first = self._churned(problem, seed=1)
        second = self._churned(first, seed=2)
        program = build_program(problem, Policy.MULTIPLE)
        twice = program.with_requests(first).with_requests(second)
        assert_programs_identical(twice, build_program(second, Policy.MULTIPLE))

    def test_patched_solutions_match(self):
        problem = make_random_problem(34, size=36, load=0.5)
        epoch = self._churned(problem)
        program = build_program(
            problem, Policy.MULTIPLE, integral_placement=True, integral_assignment=False
        )
        patched = solve_program(program.with_requests(epoch))
        assert patched.optimal
        assert patched.objective == pytest.approx(lower_bound(epoch))

    def test_rejects_non_rate_diffs(self):
        problem = make_random_problem(35, size=30, load=0.5, homogeneous=False)
        program = build_program(problem, Policy.MULTIPLE)
        # capacity change
        node = next(iter(problem.tree.node_ids))
        degraded = trajectories.capacity_incident(
            problem, 2, at=1, nodes=(node,), factor=0.5
        )[1]
        with pytest.raises(ValueError):
            program.with_requests(degraded)
        # constraint change
        with pytest.raises(ValueError):
            program.with_requests(
                dataclasses.replace(problem, constraints=ConstraintSet.qos_distance())
            )
        # topology change
        other = make_random_problem(36, size=30, load=0.5, homogeneous=False)
        with pytest.raises(ValueError):
            program.with_requests(other)

    def test_rejects_zero_crossing_rates(self):
        problem = make_random_problem(37, size=30, load=0.4)
        client = problem.tree.client_ids[0]
        program = build_program(problem, Policy.MULTIPLE)
        zeroed = dataclasses.replace(
            problem, tree=problem.tree.with_requests({client: 0.0})
        )
        with pytest.raises(ValueError):
            program.with_requests(zeroed)

    def test_reference_single_server_programs_are_not_patchable(self):
        # Single-server patching rewrites request coefficients through the
        # assembler's nnz->pair map; the row-by-row oracle has none.
        problem = make_random_problem(38, size=30, load=0.4)
        program = build_program_reference(problem, Policy.UPWARDS)
        epoch = self._churned(problem)
        with pytest.raises(ValueError):
            program.with_requests(epoch)

    def test_reference_multiple_programs_patch_correctly(self):
        # The Multiple matrix is rate-independent, so even oracle-built
        # programs can be re-targeted (only the RHS targets move).
        problem = make_random_problem(38, size=30, load=0.4)
        program = build_program_reference(problem, Policy.MULTIPLE)
        epoch = self._churned(problem)
        assert_programs_identical(
            program.with_requests(epoch), build_program(epoch, Policy.MULTIPLE)
        )

    def test_identical_rates_yield_identical_program(self):
        problem = make_random_problem(39, size=30, load=0.4)
        epoch = dataclasses.replace(problem, tree=problem.tree.with_requests({}))
        program = build_program(problem, Policy.MULTIPLE)
        patched = program.with_requests(epoch)
        assert patched.constraint_matrix is program.constraint_matrix
        assert_programs_identical(patched, program)


# --------------------------------------------------------------------------- #
# sequence-level bounds
# --------------------------------------------------------------------------- #
class TestBoundSequence:
    def _assert_matches_scratch(self, epochs, **kwargs):
        incremental = bound_sequence(epochs, **kwargs)
        for epoch_problem, value in zip(epochs, incremental.values):
            assert value == lower_bound(epoch_problem, method=kwargs.get("method", "mixed"))
        scratch = bound_sequence(epochs, mode="scratch", **kwargs)
        assert incremental.values == scratch.values
        assert all(entry.strategy == "built" for entry in scratch.stats)
        return incremental

    def test_rate_churn_bounds_match_scratch(self):
        problem = make_random_problem(41, size=50, load=0.5)
        epochs = trajectories.rate_churn(
            problem, 8, churn=0.2, magnitude=0.6, quiet_probability=0.3, seed=41
        )
        result = self._assert_matches_scratch(epochs)
        counts = result.strategy_counts()
        # Low-churn trajectories must actually exercise the cheap paths.
        assert counts.get("patched", 0) + counts.get("reused", 0) > 0
        assert counts.get("built", 0) >= 1  # epoch 0 is always built

    def test_step_and_seasonal_trajectories(self):
        problem = make_random_problem(42, size=40, load=0.5)
        for epochs in (
            trajectories.step_change(problem, 5, at=2, factor=1.5),
            trajectories.seasonal(problem, 6, amplitude=0.3, period=4.0),
        ):
            self._assert_matches_scratch(epochs)

    def test_rational_method(self):
        problem = make_random_problem(43, size=40, load=0.5)
        epochs = trajectories.rate_churn(problem, 5, churn=0.3, seed=43)
        self._assert_matches_scratch(epochs, method="rational")

    def test_capacity_incident_forces_rebuilds(self):
        problem = make_random_problem(44, size=40, load=0.5, homogeneous=False)
        epochs = trajectories.capacity_incident(
            problem, 5, at=1, duration=2, fraction=0.3, factor=0.5, seed=44
        )
        result = self._assert_matches_scratch(epochs)
        # The incident and the recovery change capacities: both rebuild.
        assert result.strategy_counts()["built"] >= 3

    def test_join_leave_topology_changes_rebuild(self):
        problem = make_random_problem(45, size=36, load=0.5)
        epochs = trajectories.client_join_leave(
            problem, 5, join_rate=0.3, leave_rate=0.2, seed=45
        )
        self._assert_matches_scratch(epochs)

    def test_infeasible_epochs_are_inf(self):
        problem = make_random_problem(46, size=30, load=0.9)
        tree = problem.tree
        overload = {cid: problem.requests(cid) * 1000 for cid in tree.client_ids}
        epochs = [
            problem,
            dataclasses.replace(problem, tree=tree.with_requests(overload)),
        ]
        result = bound_sequence(epochs)
        assert math.isfinite(result.values[0])
        assert math.isinf(result.values[1])
        assert not result.results[1].feasible

    def test_gaps_and_describe(self):
        from repro.api import solve_sequence

        problem = make_random_problem(47, size=40, load=0.5)
        epochs = trajectories.rate_churn(problem, 6, churn=0.2, seed=47)
        solved = solve_sequence(epochs)
        bounds = bound_sequence(epochs)
        gaps = bounds.gaps(solved.costs)
        for cost, value, gap in zip(solved.costs, bounds.values, gaps):
            if cost is None or not math.isfinite(value) or value <= 0:
                assert gap is None
            else:
                assert gap == pytest.approx(cost / value)
                assert gap >= 1.0 - 1e-9  # a bound never exceeds a real cost
        assert "epochs bounded" in bounds.describe()
        with pytest.raises(ValueError):
            bounds.gaps(solved.costs[:-1])

    def test_mixed_bound_agrees_with_lp_lower_bound_object(self):
        problem = make_random_problem(48, size=36, load=0.5)
        result = bound_sequence([problem]).results[0]
        direct = lp_lower_bound(problem)
        assert result.value == direct.value
        assert result.method == direct.method
