"""CLI machine-readability regressions, exercised through real subprocesses.

Piped consumers do ``repro ... --json | jq`` (or ``json.loads`` the whole
stream): the payload must be the **only** thing on stdout, with every
warning and progress line on stderr -- even when the invocation trips
flag-mismatch warnings.  The in-process CLI tests cannot catch an
accidental ``print()`` in a library module redirecting through the same
interpreter-level ``sys.stdout`` the test harness captures, so these tests
spawn real interpreters.

The ``repro serve --stdio`` smoke here mirrors the CI workflow step: boot
the server as a subprocess, pipe solve + bound + stats envelopes through
it, and decode every reply with :func:`repro.core.results.result_from_json`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def run_cli(*args, input_text=None):
    """Run ``python -m repro`` with the checkout on PYTHONPATH."""
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC}{os.pathsep}{env.get('PYTHONPATH', '')}".rstrip(
        os.pathsep
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=input_text,
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


@pytest.fixture(scope="module")
def tree_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "tree.json"
    result = run_cli(
        "generate", str(path), "--size", "30", "--load", "0.4", "--seed", "17"
    )
    assert result.returncode == 0, result.stderr
    return path


def assert_pure_json(stdout: str):
    """The whole stdout stream must parse as one JSON document."""
    assert stdout.strip(), "expected a JSON payload on stdout"
    return json.loads(stdout)


def test_solve_json_stdout_is_pure(tree_file):
    result = run_cli("solve", str(tree_file), "--json")
    assert result.returncode == 0, result.stderr
    payload = assert_pure_json(result.stdout)
    assert payload["type"] == "solve_result"


def test_compare_json_stdout_is_pure(tree_file):
    result = run_cli("compare", str(tree_file), "--bounds", "--json")
    assert result.returncode == 0, result.stderr
    payload = assert_pure_json(result.stdout)
    assert payload["type"] == "compare_result"


def test_batch_json_stdout_is_pure(tree_file):
    result = run_cli("batch", str(tree_file), str(tree_file), "--json")
    assert result.returncode == 0, result.stderr
    payload = assert_pure_json(result.stdout)
    assert payload["type"] == "batch" and payload["total"] == 2


def test_dynamic_json_with_warnings_keeps_stdout_pure(tree_file):
    """Flag-mismatch warnings must land on stderr, not inside the payload."""
    result = run_cli(
        "dynamic",
        str(tree_file),
        "--json",
        "--trajectory",
        "ramp",
        "--epochs",
        "4",
        # --churn is ignored by the ramp trajectory: triggers the warning
        "--churn",
        "0.4",
        "--workers",
        "2",
    )
    assert result.returncode == 0, result.stderr
    payload = assert_pure_json(result.stdout)
    assert payload["type"] == "sequence_result"
    assert "warning" in result.stderr


def test_dynamic_resolve_on_saturation_flag(tree_file):
    result = run_cli(
        "dynamic",
        str(tree_file),
        "--json",
        "--resolve",
        "on-saturation",
        "--epochs",
        "5",
        "--seed",
        "3",
    )
    assert result.returncode == 0, result.stderr
    payload = assert_pure_json(result.stdout)
    strategies = payload["strategies"]
    assert sum(strategies.values()) == 5


def test_serve_stdio_round_trip(tree_file):
    """The CI smoke: solve + bound + stats envelopes through a subprocess."""
    from repro.core.problem import ReplicaPlacementProblem
    from repro.core.results import result_from_json
    from repro.core.serialization import load_tree, problem_to_dict

    problem_payload = problem_to_dict(
        ReplicaPlacementProblem(tree=load_tree(tree_file))
    )
    envelopes = [
        {"op": "solve", "problem": problem_payload},
        {"op": "bound", "problem": problem_payload},
        {"op": "stats"},
        {"op": "nonsense"},
    ]
    result = run_cli(
        "serve",
        "--stdio",
        input_text="".join(json.dumps(env) + "\n" for env in envelopes),
    )
    assert result.returncode == 0, result.stderr
    lines = result.stdout.strip().splitlines()
    assert len(lines) == len(envelopes)
    solve = result_from_json(lines[0])
    bound = result_from_json(lines[1])
    stats = result_from_json(lines[2])
    assert solve.feasible and solve.cost is not None
    assert bound.feasible and bound.value <= solve.cost
    assert stats.solves == 1 and stats.bounds == 1
    error = json.loads(lines[3])
    assert error["type"] == "error" and error["error"]["code"] == "bad_request"


def test_serve_snapshot_dir_restores_across_processes(tree_file, tmp_path):
    """Warm restart: a second server process answers from restored caches."""
    from repro.core.problem import ReplicaPlacementProblem
    from repro.core.results import result_from_json
    from repro.core.serialization import load_tree, problem_to_dict

    problem_payload = problem_to_dict(
        ReplicaPlacementProblem(tree=load_tree(tree_file))
    )
    snapshot_dir = tmp_path / "snapshots"
    first = run_cli(
        "serve",
        "--stdio",
        "--snapshot-dir",
        str(snapshot_dir),
        input_text=json.dumps({"op": "solve", "problem": problem_payload}) + "\n",
    )
    assert first.returncode == 0, first.stderr
    first_solve = result_from_json(first.stdout.strip().splitlines()[0])

    second = run_cli(
        "serve",
        "--stdio",
        "--snapshot-dir",
        str(snapshot_dir),
        input_text="".join(
            json.dumps(env) + "\n"
            for env in (
                {"op": "solve", "problem": problem_payload},
                {"op": "stats"},
            )
        ),
    )
    assert second.returncode == 0, second.stderr
    lines = second.stdout.strip().splitlines()
    warm_solve = result_from_json(lines[0])
    stats = result_from_json(lines[1])
    assert "restored 1 warm session" in second.stderr
    assert stats.restored == 1
    # answered from the restored cache: the solver-run counter still shows
    # only the *persisted* first-process solve, and the warm query counted
    # as a cache hit with a bit-identical payload (runtime included).
    assert stats.solves == 1 and stats.solve_cache_hits == 1
    assert warm_solve.to_dict() == first_solve.to_dict()
