"""Tests for the batch solving layer (:func:`repro.api.solve_many`).

The contract under test: whatever the worker count, ``solve_many`` returns
exactly what a sequential loop of :func:`repro.api.solve` would return, in
the same order; infeasible instances are mapped to ``None`` by default and
re-raised in input order under ``on_error="raise"``.
"""

from __future__ import annotations

import pytest

from repro.api import solve, solve_many
from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError
from repro.core.problem import ProblemKind, ReplicaPlacementProblem, replica_cost_problem
from repro.workloads.generator import GeneratorConfig, TreeGenerator


def batch_problems(count=8, *, qos=None):
    problems = []
    for seed in range(count):
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(
                size=30 + 4 * seed,
                target_load=0.3 + 0.05 * seed,
                homogeneous=seed % 2 == 0,
                qos_hops=qos,
            )
        )
        constraints = ConstraintSet.qos_distance() if qos else ConstraintSet.none()
        kind = ProblemKind.REPLICA_COUNTING if seed % 2 == 0 else ProblemKind.REPLICA_COST
        problems.append(
            ReplicaPlacementProblem(tree=tree, constraints=constraints, kind=kind)
        )
    return problems


def sequential_reference(problems, **kwargs):
    results = []
    for problem in problems:
        try:
            results.append(solve(problem, **kwargs))
        except InfeasibleError:
            results.append(None)
    return results


def assert_same_solutions(batch, reference):
    assert len(batch) == len(reference)
    for got, expected in zip(batch, reference):
        assert (got is None) == (expected is None)
        if got is not None:
            assert got.placement.replicas == expected.placement.replicas
            assert got.assignment == expected.assignment
            assert got.algorithm == expected.algorithm


@pytest.mark.parametrize("workers", [None, 1, 4])
def test_solve_many_matches_sequential_loop(workers):
    problems = batch_problems()
    reference = sequential_reference(problems, policy="multiple")
    batch = solve_many(problems, policy="multiple", workers=workers)
    assert_same_solutions(batch, reference)


@pytest.mark.parametrize("workers", [1, 4])
def test_solve_many_with_qos_and_forced_algorithm(workers):
    problems = batch_problems(qos=(2, 5))
    reference = sequential_reference(problems, policy="multiple", algorithm="MG")
    batch = solve_many(problems, policy="multiple", algorithm="MG", workers=workers)
    assert_same_solutions(batch, reference)


def test_solve_many_preserves_order():
    """Order must follow the input, not completion time or chunk layout."""
    problems = batch_problems(9)
    batch = solve_many(problems, policy="multiple", workers=4)
    reference = sequential_reference(problems, policy="multiple")
    for index, (got, expected) in enumerate(zip(batch, reference)):
        if expected is not None:
            assert got is not None, index
            assert got.cost(problems[index]) == expected.cost(problems[index])


def test_solve_many_maps_infeasible_to_none_by_default(chain_tree):
    # chain_tree's single client issues 6 requests; every node has W=4, so
    # the single-server policies are infeasible while Multiple is not.
    problems = [replica_cost_problem(chain_tree)] * 3
    results = solve_many(problems, policy="closest")
    assert results == [None, None, None]
    multiple = solve_many(problems, policy="multiple")
    assert all(solution is not None for solution in multiple)


@pytest.mark.parametrize("workers", [None, 4])
def test_solve_many_on_error_raise(chain_tree, workers):
    solvable = batch_problems(2)
    problems = solvable[:1] + [replica_cost_problem(chain_tree)] + solvable[1:]
    with pytest.raises(InfeasibleError):
        solve_many(problems, policy="closest", on_error="raise", workers=workers)


def test_solve_many_rejects_unknown_on_error(small_problem):
    with pytest.raises(ValueError):
        solve_many([small_problem], on_error="ignore")


def test_solve_many_empty_batch():
    assert solve_many([]) == []


def test_solve_many_accepts_bare_trees():
    trees = [
        TreeGenerator(seed).generate(GeneratorConfig(size=24, target_load=0.4))
        for seed in range(3)
    ]
    results = solve_many(trees, policy="multiple", workers=2)
    assert len(results) == 3
    assert all(solution is not None for solution in results)


@pytest.mark.parametrize("engine", ["dict", "fast"])
def test_solve_many_engine_override_is_equivalent(engine):
    problems = batch_problems(5)
    reference = sequential_reference(problems, policy="upwards")
    batch = solve_many(problems, policy="upwards", workers=2, engine=engine)
    assert_same_solutions(batch, reference)
