"""Snapshot directory compaction: ageing out tenants across restarts.

Long-lived ``--snapshot-dir`` directories accumulate one file per tenant
forever; with ``retain_restarts=N`` the retention meta sidecar
(``snapshots.meta.json``) ages out tenants unseen for ``N`` consecutive
restarts.  These tests pin the exact retention boundary: a tenant's file
survives every restart while its age is ``< N`` and is deleted at the first
restart where ``restarts - last_seen >= N``, while active tenants (restored
at boot, or refreshed by a snapshot pass) never age at all.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.serving.fingerprint import problem_fingerprint
from repro.serving.pool import SessionPool
from repro.serving.server import ReproServer
from repro.serving.snapshot import (
    SNAPSHOT_META,
    restore_pool,
    save_pool,
    save_session,
    snapshot_path,
)
from repro.session import PlacementSession
from tests.conftest import make_random_problem


def write_snapshot(directory, seed, *, mtime):
    """Persist a fresh session for ``seed``; returns (fingerprint, path)."""
    problem = make_random_problem(seed, size=12, load=0.3)
    session = PlacementSession(problem)
    path = save_session(session, directory)
    os.utime(path, (mtime, mtime))
    return problem_fingerprint(problem), path


def read_meta(directory):
    return json.loads((directory / SNAPSHOT_META).read_text())


class TestRetentionBoundary:
    def test_stale_tenant_ages_out_exactly_at_the_boundary(self, tmp_path):
        """Graced at restart 1, a never-seen tenant dies at restart N+1."""
        stale_fp, stale_path = write_snapshot(tmp_path, seed=1, mtime=1_000.0)
        live_fp, live_path = write_snapshot(tmp_path, seed=2, mtime=2_000.0)

        # capacity-1 pool: only the newest file (the live tenant) restores,
        # so the stale tenant is never seen again after its grace restart.
        assert restore_pool(SessionPool(capacity=1), tmp_path, retain_restarts=2) == 1
        meta = read_meta(tmp_path)
        assert meta["restarts"] == 1
        assert meta["last_seen"] == {stale_fp: 1, live_fp: 1}
        assert stale_path.exists()

        # restart 2: age(stale) = 1 < 2 -- still inside the window.
        restore_pool(SessionPool(capacity=1), tmp_path, retain_restarts=2)
        assert stale_path.exists()

        # restart 3: age(stale) = 2 >= 2 -- aged out; the live tenant,
        # re-seen every boot, never ages.
        restore_pool(SessionPool(capacity=1), tmp_path, retain_restarts=2)
        assert not stale_path.exists()
        assert live_path.exists()
        meta = read_meta(tmp_path)
        assert stale_fp not in meta["last_seen"]
        assert meta["last_seen"][live_fp] == 3

    def test_returning_tenant_resets_its_age(self, tmp_path):
        """A tenant restored within the window starts a fresh window."""
        old_fp, old_path = write_snapshot(tmp_path, seed=3, mtime=1_000.0)
        write_snapshot(tmp_path, seed=4, mtime=2_000.0)

        restore_pool(SessionPool(capacity=1), tmp_path, retain_restarts=2)
        # restart 2 with a bigger pool: the old tenant is restored (seen).
        assert restore_pool(SessionPool(capacity=4), tmp_path, retain_restarts=2) == 2
        assert read_meta(tmp_path)["last_seen"][old_fp] == 2
        # restart 3 back at capacity 1: age(old) = 1 < 2, survives.
        restore_pool(SessionPool(capacity=1), tmp_path, retain_restarts=2)
        assert old_path.exists()

    def test_save_pool_refreshes_residents_and_compacts_strangers(self, tmp_path):
        live_fp, live_path = write_snapshot(tmp_path, seed=5, mtime=2_000.0)
        stale_fp, stale_path = write_snapshot(tmp_path, seed=6, mtime=1_000.0)

        pool = SessionPool(capacity=1)
        restore_pool(pool, tmp_path)  # restart 1: restores the live tenant
        restore_pool(pool, tmp_path)  # restart 2: stale tenant's age hits 1
        # a snapshot pass re-writes the resident (live) tenant, refreshing
        # its last-seen restart, and compacts the stranger past the window.
        save_pool(pool, tmp_path, retain_restarts=1)
        assert live_path.exists()
        assert not stale_path.exists()
        meta = read_meta(tmp_path)
        assert meta["last_seen"] == {live_fp: 2}

    def test_without_retain_nothing_is_ever_deleted(self, tmp_path):
        _, stale_path = write_snapshot(tmp_path, seed=7, mtime=1_000.0)
        write_snapshot(tmp_path, seed=8, mtime=2_000.0)
        for _ in range(5):
            restore_pool(SessionPool(capacity=1), tmp_path)
        assert stale_path.exists()
        # the meta still counts restarts, so enabling retention later ages
        # from real history instead of wiping the directory at once.
        assert read_meta(tmp_path)["restarts"] == 5

    def test_vanished_files_are_pruned_from_the_meta(self, tmp_path):
        gone_fp, gone_path = write_snapshot(tmp_path, seed=9, mtime=1_000.0)
        write_snapshot(tmp_path, seed=10, mtime=2_000.0)
        restore_pool(SessionPool(capacity=4), tmp_path, retain_restarts=3)
        gone_path.unlink()  # an operator removes the file by hand
        restore_pool(SessionPool(capacity=4), tmp_path, retain_restarts=3)
        assert gone_fp not in read_meta(tmp_path)["last_seen"]

    def test_corrupt_meta_restarts_the_clock(self, tmp_path):
        write_snapshot(tmp_path, seed=11, mtime=1_000.0)
        (tmp_path / SNAPSHOT_META).write_text("{not json")
        assert restore_pool(SessionPool(capacity=4), tmp_path, retain_restarts=2) == 1
        assert read_meta(tmp_path)["restarts"] == 1


class TestServerIntegration:
    def test_server_boot_applies_retention(self, tmp_path):
        stale_fp, stale_path = write_snapshot(tmp_path, seed=12, mtime=1_000.0)
        write_snapshot(tmp_path, seed=13, mtime=2_000.0)
        for _ in range(3):
            server = ReproServer(
                capacity=1, snapshot_dir=tmp_path, snapshot_retain=2
            )
        assert server.restored == 1
        assert not stale_path.exists()

    def test_snapshot_all_honours_retention(self, tmp_path):
        server = ReproServer(capacity=4, snapshot_dir=tmp_path, snapshot_retain=1)
        # a stranger's snapshot appears after boot, last seen a window ago
        fp, path = write_snapshot(tmp_path, seed=14, mtime=1_000.0)
        meta = read_meta(tmp_path)
        meta["last_seen"][fp] = meta["restarts"] - 1
        (tmp_path / SNAPSHOT_META).write_text(json.dumps(meta))
        # the explicit snapshot pass compacts it (residents would have been
        # re-written, and thereby refreshed, before the age-out)
        server.snapshot_all()
        assert not path.exists()
        assert fp not in read_meta(tmp_path)["last_seen"]

    def test_snapshot_retain_is_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ReproServer(snapshot_dir=tmp_path, snapshot_retain=0)
