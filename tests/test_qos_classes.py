"""Tests of multi-metric QoS classes (``repro.qos`` + ``ClassedConstraintSet``).

Pins the engine-matrix equivalence (dict/fast/native bit-identical on
classed instances, monotone and non-monotone alike), the serialization
and fingerprint round trips of the new link-metric and service-class
fields, and the per-class carving of :func:`split_by_class`.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.algorithms.common import available_engines
from repro.core.builder import TreeBuilder
from repro.core.constraints import ClassedConstraintSet, QoSMode
from repro.core.index import supports_qos_thresholds
from repro.core.problem import ReplicaPlacementProblem, replica_cost_problem
from repro.core.serialization import (
    constraints_from_dict,
    constraints_to_dict,
    problem_from_dict,
    problem_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.core.tree import TreeNetwork
from repro.qos.metrics import (
    DEFAULT_CLASSES,
    MetricScales,
    MetricWeights,
    QoSMetrics,
    ServiceClass,
    annotate_tree,
    split_by_class,
)
from repro.serving.fingerprint import problem_fingerprint
from repro.workloads.generator import GeneratorConfig, TreeGenerator, generate_tree


def _classed_problem(seed=11, *, size=40, classes=None, budget=0.9):
    """A heterogeneous metric-annotated instance with binding class QoS."""
    tree = annotate_tree(
        TreeGenerator(seed).generate(
            GeneratorConfig(size=size, target_load=0.3, homogeneous=False)
        ),
        seed=seed,
    )
    constraints = ClassedConstraintSet.standard(tree, classes=classes, seed=seed)
    clients = []
    for client in tree.clients():
        scores = [s for _, s in constraints.iter_ancestor_scores(tree, client.id)]
        bound = budget * max(scores)
        clients.append(replace(client, qos=bound) if bound > 0 else client)
    tree = TreeNetwork(list(tree.nodes()), clients, list(tree.links()))
    return replica_cost_problem(tree, constraints=constraints)


class TestMetricsAndClasses:
    def test_annotate_tree_is_deterministic(self):
        tree = TreeGenerator(5).generate(GeneratorConfig(size=30, target_load=0.4))
        a = annotate_tree(tree, seed=3)
        b = annotate_tree(tree, seed=3)
        c = annotate_tree(tree, seed=4)
        for link_a, link_b in zip(a.links(), b.links()):
            assert link_a.metrics == link_b.metrics
        assert any(
            la.metrics != lc.metrics for la, lc in zip(a.links(), c.links())
        )
        # Structure is untouched: same nodes, clients and link keys (the
        # rebuilt sibling order may differ -- links are drawn in sorted
        # key order -- so compare as sets).
        assert set(a.client_ids) == set(tree.client_ids)
        assert all(link.metrics is not None for link in a.links())

    def test_generator_link_metrics_flag(self):
        tree = generate_tree(
            size=30, target_load=0.4, homogeneous=True, seed=9, link_metrics=True
        )
        assert all(link.metrics is not None for link in tree.links())
        again = generate_tree(
            size=30, target_load=0.4, homogeneous=True, seed=9, link_metrics=True
        )
        for one, two in zip(tree.links(), again.links()):
            assert one.metrics == two.metrics

    def test_score_monotone_along_root_path(self):
        problem = _classed_problem()
        tree = problem.tree
        for client in tree.clients():
            scores = [
                s
                for _, s in problem.constraints.iter_ancestor_scores(
                    tree, client.id
                )
            ]
            assert scores == sorted(scores)

    def test_non_monotone_weights_detected(self):
        preferring = ServiceClass(
            name="odd", weights=MetricWeights(latency=-1.0)
        )
        assert not preferring.monotone
        constraints = ClassedConstraintSet(classes=(preferring,))
        assert not constraints.monotone_path_metric
        assert not supports_qos_thresholds(constraints)
        assert supports_qos_thresholds(
            ClassedConstraintSet(classes=DEFAULT_CLASSES)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ClassedConstraintSet(classes=())
        twin = ServiceClass(name="gold")
        with pytest.raises(ValueError):
            ClassedConstraintSet(classes=(twin, DEFAULT_CLASSES[0]))
        with pytest.raises(ValueError):
            ClassedConstraintSet(
                classes=DEFAULT_CLASSES, assignments=(("c", "platinum"),)
            )
        with pytest.raises(ValueError):
            ClassedConstraintSet(
                classes=DEFAULT_CLASSES,
                assignments=(("c", "gold"), ("c", "bronze")),
            )
        with pytest.raises(ValueError):
            ClassedConstraintSet(classes=DEFAULT_CLASSES, qos_mode=QoSMode.DISTANCE)

    def test_class_of_falls_back_to_default(self):
        constraints = ClassedConstraintSet(
            classes=DEFAULT_CLASSES,
            assignments=(("a", "gold"),),
            default_class="bronze",
        )
        assert constraints.class_of("a").name == "gold"
        assert constraints.class_of("stranger").name == "bronze"


class TestEligibility:
    def test_threshold_walk_matches_per_pair_scores(self):
        problem = _classed_problem()
        tree = problem.tree
        constraints = problem.constraints
        for client in tree.clients():
            eligible = set(problem.eligible_servers(client.id))
            brute = {
                ancestor
                for ancestor, score in constraints.iter_ancestor_scores(
                    tree, client.id
                )
                if score <= client.qos
            }
            assert eligible == brute

    def test_non_monotone_fallback_matches_per_pair_scores(self):
        odd = (
            ServiceClass(name="odd", weights=MetricWeights(latency=-1.0)),
            ServiceClass(name="plain", priority=1),
        )
        problem = _classed_problem(classes=odd, budget=0.5)
        assert not supports_qos_thresholds(problem.constraints)
        tree = problem.tree
        for client in tree.clients():
            eligible = set(problem.eligible_servers(client.id))
            brute = {
                ancestor
                for ancestor, score in problem.constraints.iter_ancestor_scores(
                    tree, client.id
                )
                if score <= client.qos
            }
            assert eligible == brute


class TestEngineMatrix:
    def test_engines_bit_identical_on_classed_instances(self):
        from repro.api import compare_policies

        problem = _classed_problem()
        reference = None
        for engine in available_engines():
            results = compare_policies(problem, engine=engine)
            snapshot = {}
            for policy, solution in results.solutions.items():
                if solution is None:
                    snapshot[policy] = None
                else:
                    snapshot[policy] = (
                        tuple(solution.placement.sorted()),
                        solution.cost(problem),
                    )
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference


class TestSerialization:
    def test_link_metrics_round_trip(self):
        tree = annotate_tree(
            TreeGenerator(3).generate(GeneratorConfig(size=20, target_load=0.4)),
            seed=3,
        )
        rebuilt = tree_from_dict(tree_to_dict(tree))
        for one, two in zip(tree.links(), rebuilt.links()):
            assert one.metrics == two.metrics

    def test_unannotated_links_stay_byte_identical(self):
        tree = TreeGenerator(3).generate(GeneratorConfig(size=20, target_load=0.4))
        payload = tree_to_dict(tree)
        assert all("metrics" not in entry for entry in payload["links"])

    def test_classed_constraints_round_trip(self):
        problem = _classed_problem()
        payload = constraints_to_dict(problem.constraints)
        assert payload["type"] == "classed"
        rebuilt = constraints_from_dict(payload)
        assert rebuilt == problem.constraints

    def test_base_constraints_payload_untagged(self):
        from repro.core.constraints import ConstraintSet

        payload = constraints_to_dict(ConstraintSet.qos_distance())
        assert "type" not in payload or payload.get("type") == "base"
        assert constraints_from_dict(payload) == ConstraintSet.qos_distance()

    def test_problem_round_trip(self):
        problem = _classed_problem()
        rebuilt = problem_from_dict(problem_to_dict(problem))
        assert rebuilt.constraints == problem.constraints
        assert rebuilt.kind == problem.kind
        for one, two in zip(problem.tree.links(), rebuilt.tree.links()):
            assert one.metrics == two.metrics
        for one, two in zip(problem.tree.clients(), rebuilt.tree.clients()):
            assert one.qos == two.qos


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert problem_fingerprint(_classed_problem()) == problem_fingerprint(
            _classed_problem()
        )

    def test_sensitive_to_metrics_and_assignments(self):
        base = _classed_problem(seed=11)
        other_metrics = _classed_problem(seed=11)
        tree = annotate_tree(other_metrics.tree, seed=99)
        remetriced = replace(other_metrics, tree=tree)
        assert problem_fingerprint(base) != problem_fingerprint(remetriced)

        swapped = replace(
            base,
            constraints=ClassedConstraintSet.standard(base.tree, seed=77),
        )
        assert problem_fingerprint(base) != problem_fingerprint(swapped)

    def test_round_trip_preserves_fingerprint(self):
        problem = _classed_problem()
        rebuilt = problem_from_dict(problem_to_dict(problem))
        assert problem_fingerprint(problem) == problem_fingerprint(rebuilt)


class TestSplitByClass:
    def test_carves_demand_and_bandwidth(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=40)
            .add_node("mid", capacity=20, parent="root", bandwidth=10.0)
            .add_client("g", requests=4, parent="mid")
            .add_client("b", requests=6, parent="root")
            .build()
        )
        problem = replica_cost_problem(tree)
        carved = split_by_class(
            problem, {"g": "gold", "b": "bronze"}, DEFAULT_CLASSES
        )
        assert set(carved) == {"gold", "silver", "bronze"}
        gold = carved["gold"].tree
        assert gold.client("g").requests == pytest.approx(
            4 * DEFAULT_CLASSES[0].rate_multiplier
        )
        assert gold.client("b").requests == 0.0
        assert gold.link("mid").bandwidth == pytest.approx(
            10.0 * DEFAULT_CLASSES[0].bandwidth_fraction
        )
        bronze = carved["bronze"].tree
        assert bronze.client("b").requests == 6.0
        assert bronze.client("g").requests == 0.0
        # Infinite bandwidths are never scaled down to a finite fraction.
        for sub in carved.values():
            assert math.isinf(sub.tree.link("b").bandwidth)

    def test_unknown_class_raises(self):
        problem = _classed_problem()
        with pytest.raises(ValueError):
            split_by_class(problem, {"c": "platinum"}, DEFAULT_CLASSES)


class TestQoSMetricsType:
    def test_extend_accumulates(self):
        a = QoSMetrics(latency=1.0, jitter=0.1, loss=0.01, bandwidth=10.0)
        b = QoSMetrics(latency=2.0, jitter=0.2, loss=0.02, bandwidth=4.0)
        path = a.extend(b)
        assert path.latency == pytest.approx(3.0)
        assert path.jitter == pytest.approx(0.3)
        # Loss compounds (1 - prod(1 - p)), bandwidth is the bottleneck.
        assert path.loss == pytest.approx(1 - (1 - 0.01) * (1 - 0.02))
        assert path.bandwidth == 4.0

    def test_round_trip(self):
        metrics = QoSMetrics(latency=1.5, jitter=0.25, loss=0.005, bandwidth=8.0)
        assert QoSMetrics.from_dict(metrics.to_dict()) == metrics

    def test_service_class_round_trip(self):
        for entry in DEFAULT_CLASSES:
            assert ServiceClass.from_dict(entry.to_dict()) == entry

    def test_scales_validation(self):
        with pytest.raises(ValueError):
            MetricScales(latency=0.0)
