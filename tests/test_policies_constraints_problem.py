"""Unit tests for access policies, constraint sets and problem instances."""

from __future__ import annotations

import math

import pytest

from repro.core.constraints import ConstraintSet, QoSMode
from repro.core.exceptions import TreeStructureError
from repro.core.policies import Policy
from repro.core.problem import (
    ProblemKind,
    ReplicaPlacementProblem,
    replica_cost_problem,
    replica_counting_problem,
)


class TestPolicy:
    def test_ordered_goes_from_restrictive_to_permissive(self):
        assert Policy.ordered() == (Policy.CLOSEST, Policy.UPWARDS, Policy.MULTIPLE)

    def test_single_server_flags(self):
        assert Policy.CLOSEST.single_server
        assert Policy.UPWARDS.single_server
        assert not Policy.MULTIPLE.single_server

    def test_dominance_chain(self):
        assert Policy.MULTIPLE.is_at_least_as_permissive_as(Policy.UPWARDS)
        assert Policy.UPWARDS.is_at_least_as_permissive_as(Policy.CLOSEST)
        assert not Policy.CLOSEST.is_at_least_as_permissive_as(Policy.UPWARDS)
        assert Policy.UPWARDS.is_at_least_as_permissive_as(Policy.UPWARDS)

    @pytest.mark.parametrize(
        "value, expected",
        [
            ("closest", Policy.CLOSEST),
            ("Upwards", Policy.UPWARDS),
            ("MULTIPLE", Policy.MULTIPLE),
            (Policy.CLOSEST, Policy.CLOSEST),
        ],
    )
    def test_parse(self, value, expected):
        assert Policy.parse(value) is expected

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Policy.parse("nearest")

    def test_str(self):
        assert str(Policy.MULTIPLE) == "multiple"


class TestConstraintSet:
    def test_none_constructor(self):
        constraints = ConstraintSet.none()
        assert not constraints.has_qos and not constraints.enforce_bandwidth

    def test_full_constructor(self):
        constraints = ConstraintSet.full()
        assert constraints.qos_mode is QoSMode.LATENCY and constraints.enforce_bandwidth

    def test_qos_metric_distance(self, qos_tree):
        constraints = ConstraintSet.qos_distance()
        assert constraints.qos_metric(qos_tree, "near", "leaf") == 1
        assert constraints.qos_metric(qos_tree, "near", "root") == 3

    def test_qos_metric_latency(self, qos_tree):
        constraints = ConstraintSet.qos_latency()
        assert constraints.qos_metric(qos_tree, "near", "leaf") == pytest.approx(1.0)
        assert constraints.qos_metric(qos_tree, "near", "root") == pytest.approx(6.0)

    def test_qos_metric_disabled_returns_zero(self, qos_tree):
        assert ConstraintSet.none().qos_metric(qos_tree, "near", "root") == 0.0

    def test_allowed_servers_orders_bottom_up(self, qos_tree):
        constraints = ConstraintSet.qos_distance()
        assert constraints.allowed_servers(qos_tree, "far") == ("leaf", "mid", "root")
        assert constraints.allowed_servers(qos_tree, "near") == ("leaf",)

    def test_qos_mode_parse(self):
        assert QoSMode.parse("distance") is QoSMode.DISTANCE
        assert QoSMode.parse(QoSMode.LATENCY) is QoSMode.LATENCY
        with pytest.raises(ValueError):
            QoSMode.parse("speed")

    def test_describe_mentions_settings(self):
        assert "no QoS" in ConstraintSet.none().describe()
        assert "bandwidth" in ConstraintSet.full().describe()


class TestProblem:
    def test_replica_cost_storage_equals_capacity(self, hetero_tree):
        problem = replica_cost_problem(hetero_tree)
        assert problem.storage_cost("a") == 10
        assert problem.storage_cost("root") == 100

    def test_replica_counting_storage_is_one(self, small_tree):
        problem = replica_counting_problem(small_tree)
        assert problem.storage_cost("root") == 1
        assert problem.storage_cost("n1") == 1

    def test_general_kind_uses_declared_costs(self, hetero_tree):
        problem = ReplicaPlacementProblem(tree=hetero_tree, kind=ProblemKind.GENERAL)
        assert problem.storage_cost("root") == 100

    def test_replica_counting_requires_homogeneous(self, hetero_tree):
        with pytest.raises(TreeStructureError):
            replica_counting_problem(hetero_tree)

    def test_storage_costs_mapping(self, small_tree):
        problem = replica_counting_problem(small_tree)
        assert problem.storage_costs() == {"root": 1.0, "n1": 1.0}

    def test_capacity_and_requests_accessors(self, small_problem):
        assert small_problem.capacity("n1") == 10
        assert small_problem.requests("c1") == 7

    def test_eligible_servers_without_qos(self, small_problem):
        assert small_problem.eligible_servers("c1") == ("n1", "root")

    def test_eligible_servers_with_qos(self, qos_tree):
        problem = replica_cost_problem(qos_tree, constraints=ConstraintSet.qos_distance())
        assert problem.eligible_servers("near") == ("leaf",)
        assert problem.eligible_servers("far") == ("leaf", "mid", "root")

    def test_qos_satisfied(self, qos_tree):
        problem = replica_cost_problem(qos_tree, constraints=ConstraintSet.qos_distance())
        assert problem.qos_satisfied("far", "root")
        assert not problem.qos_satisfied("near", "root")

    def test_link_bandwidth_only_when_enforced(self, qos_tree):
        relaxed = replica_cost_problem(qos_tree)
        assert math.isinf(relaxed.link_bandwidth("mid"))

    def test_with_constraints_and_with_kind(self, small_tree):
        problem = replica_cost_problem(small_tree)
        qos = problem.with_constraints(ConstraintSet.qos_distance())
        assert qos.constraints.has_qos and not problem.constraints.has_qos
        counting = problem.with_kind(ProblemKind.REPLICA_COUNTING)
        assert counting.kind is ProblemKind.REPLICA_COUNTING

    def test_describe_and_size(self, small_problem):
        assert small_problem.size == 5
        assert "lambda" in small_problem.describe()

    def test_is_homogeneous(self, small_problem, hetero_problem):
        assert small_problem.is_homogeneous
        assert not hetero_problem.is_homogeneous
