"""Tests of the LP/ILP formulations, solver wrappers and bounds."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.builder import TreeBuilder
from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import replica_cost_problem, replica_counting_problem
from repro.lp import (
    LinearProgramData,
    VariableSpace,
    build_program,
    exact_cost,
    exact_solution,
    lp_lower_bound,
    rational_relaxation_bound,
    solve_program,
)
from repro.workloads import reference_trees
from tests.conftest import assert_valid, make_random_problem


class TestVariableSpace:
    def test_counts(self, small_problem):
        space = VariableSpace(small_problem)
        assert space.num_x == 2
        # c1, c2 have ancestors (n1, root); c3 only root -> 5 pairs.
        assert space.num_y == 5
        assert space.num_variables == 7

    def test_indices_are_disjoint_and_dense(self, small_problem):
        space = VariableSpace(small_problem)
        indices = [space.x_index(n) for n in space.node_ids]
        indices += [space.y_index(c, s) for c, s in space.pairs]
        assert sorted(indices) == list(range(space.num_variables))

    def test_qos_removes_pairs(self, qos_tree):
        problem = replica_cost_problem(qos_tree, constraints=ConstraintSet.qos_distance())
        space = VariableSpace(problem)
        assert not space.has_pair("near", "root")
        assert space.has_pair("far", "root")

    def test_pairs_for_client_and_server(self, small_problem):
        space = VariableSpace(small_problem)
        assert set(space.pairs_for_client("c1")) == {("c1", "n1"), ("c1", "root")}
        assert set(space.pairs_for_server("root")) == {
            ("c1", "root"),
            ("c2", "root"),
            ("c3", "root"),
        }

    def test_describe(self, small_problem):
        assert "placement" in VariableSpace(small_problem).describe()


class TestFormulation:
    def test_multiple_program_dimensions(self, small_problem):
        program = build_program(small_problem, Policy.MULTIPLE)
        # 3 coverage rows + 2 capacity rows.
        assert program.num_constraints == 5
        assert program.num_variables == 7

    def test_single_server_bounds_are_binary(self, small_problem):
        program = build_program(small_problem, Policy.UPWARDS)
        assert np.all(program.variable_upper <= 1.0)

    def test_multiple_bounds_are_request_counts(self, small_problem):
        program = build_program(small_problem, Policy.MULTIPLE)
        space = program.space
        assert program.variable_upper[space.y_index("c1", "n1")] == 7

    def test_closest_adds_exclusion_rows(self, small_problem):
        upwards = build_program(small_problem, Policy.UPWARDS)
        closest = build_program(small_problem, Policy.CLOSEST)
        assert closest.num_constraints > upwards.num_constraints

    def test_closest_constraint_limit(self):
        problem = make_random_problem(2, size=40, load=0.3)
        with pytest.raises(ValueError):
            build_program(problem, Policy.CLOSEST, closest_constraint_limit=1)

    def test_bandwidth_rows_only_for_finite_links(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=100)
            .add_node("n1", capacity=100, parent="root", bandwidth=5)
            .add_client("c", requests=10, parent="n1")
            .build()
        )
        problem = replica_cost_problem(
            tree, constraints=ConstraintSet(enforce_bandwidth=True)
        )
        program = build_program(problem, Policy.MULTIPLE)
        assert any(label.startswith("bandwidth[") for label in program.labels)

    def test_with_integrality_masks(self, small_problem):
        program = build_program(small_problem, Policy.MULTIPLE)
        mixed = program.with_integrality(integral_placement=True, integral_assignment=False)
        assert mixed.integrality[: mixed.space.num_x].sum() == mixed.space.num_x
        assert mixed.integrality[mixed.space.num_x :].sum() == 0


class TestSolver:
    def test_pure_lp_path(self, small_problem):
        program = build_program(
            small_problem, Policy.MULTIPLE, integral_placement=False, integral_assignment=False
        )
        result = solve_program(program)
        assert result.optimal and result.objective <= 20

    def test_milp_path(self, small_problem):
        program = build_program(small_problem, Policy.MULTIPLE)
        result = solve_program(program)
        assert result.optimal
        assert result.objective == pytest.approx(20)  # both nodes needed

    def test_infeasible_detection(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=1)
            .add_client("c", requests=5, parent="r")
            .build()
        )
        program = build_program(replica_cost_problem(tree), Policy.MULTIPLE)
        assert solve_program(program).infeasible

    def test_time_limit_forwarded_to_pure_lp_backend(self, small_problem, monkeypatch):
        """Regression: the pure-LP path used to drop ``time_limit`` entirely."""
        from repro.lp import solver as solver_module

        captured = {}
        real_linprog = solver_module.optimize.linprog

        def capturing_linprog(*args, **kwargs):
            captured.update(kwargs)
            return real_linprog(*args, **kwargs)

        monkeypatch.setattr(solver_module.optimize, "linprog", capturing_linprog)
        program = build_program(
            small_problem, Policy.MULTIPLE, integral_placement=False, integral_assignment=False
        )
        result = solve_program(program, time_limit=30.0)
        assert result.optimal
        assert captured["options"] == {"time_limit": 30.0}

        captured.clear()
        assert solve_program(program).optimal
        assert captured["options"] == {}

    def test_time_limit_forwarded_to_milp_backend(self, small_problem, monkeypatch):
        from repro.lp import solver as solver_module

        captured = {}
        real_milp = solver_module.optimize.milp

        def capturing_milp(*args, **kwargs):
            captured.update(kwargs)
            return real_milp(*args, **kwargs)

        monkeypatch.setattr(solver_module.optimize, "milp", capturing_milp)
        program = build_program(small_problem, Policy.MULTIPLE)
        assert solve_program(program, time_limit=30.0).optimal
        assert captured["options"] == {"time_limit": 30.0}


class TestBounds:
    def test_mixed_bound_between_relaxation_and_optimum(self):
        for seed in (1, 5):
            problem = make_random_problem(seed, size=16, load=0.5)
            rational = rational_relaxation_bound(problem)
            mixed = lp_lower_bound(problem)
            if not mixed.feasible:
                assert not rational.feasible or rational.value <= mixed.value
                continue
            exact = exact_cost(problem, Policy.MULTIPLE)
            assert rational.value <= mixed.value + 1e-6
            assert mixed.value <= exact + 1e-6

    def test_bound_is_inf_on_infeasible_instance(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=1)
            .add_client("c", requests=5, parent="r")
            .build()
        )
        bound = lp_lower_bound(replica_cost_problem(tree))
        assert not bound.feasible and math.isinf(bound.value)

    def test_bound_finite_on_multiple_only_instance(self):
        # Figure 1(c) is infeasible for Closest/Upwards but the bound uses the
        # Multiple formulation, so it stays finite (2 replicas).
        problem = replica_counting_problem(reference_trees.figure1_tree("c"))
        bound = lp_lower_bound(problem)
        assert bound.feasible and bound.value == pytest.approx(2.0)

    def test_bound_never_exceeds_any_heuristic_cost(self):
        from repro.algorithms import MultipleGreedy

        problem = make_random_problem(31, size=40, load=0.4)
        bound = lp_lower_bound(problem)
        solution = MultipleGreedy().try_solve(problem)
        if solution is not None:
            assert bound.value <= solution.cost(problem) + 1e-6

    def test_float_protocol(self, small_counting_problem):
        assert float(lp_lower_bound(small_counting_problem)) == pytest.approx(2.0)

    def test_counting_bound_at_least_ceiling(self, small_counting_problem):
        from repro.core.costs import request_lower_bound

        bound = lp_lower_bound(small_counting_problem)
        assert bound.value >= request_lower_bound(small_counting_problem.tree) - 1e-9


class TestExactILP:
    def test_figure1_feasibility_matrix(self):
        expectations = {
            "a": {Policy.CLOSEST: True, Policy.UPWARDS: True, Policy.MULTIPLE: True},
            "b": {Policy.CLOSEST: False, Policy.UPWARDS: True, Policy.MULTIPLE: True},
            "c": {Policy.CLOSEST: False, Policy.UPWARDS: False, Policy.MULTIPLE: True},
        }
        for variant, expected in expectations.items():
            problem = replica_counting_problem(reference_trees.figure1_tree(variant))
            for policy, feasible in expected.items():
                if feasible:
                    solution = exact_solution(problem, policy)
                    assert_valid(problem, solution, policy=policy)
                else:
                    with pytest.raises(InfeasibleError):
                        exact_solution(problem, policy)

    def test_exact_solution_is_validated_per_policy(self):
        problem = make_random_problem(51, size=14, load=0.4)
        for policy in Policy.ordered():
            try:
                solution = exact_solution(problem, policy)
            except InfeasibleError:
                continue
            assert_valid(problem, solution, policy=policy)

    def test_policy_dominance_of_exact_costs(self):
        for seed in (2, 6):
            problem = make_random_problem(seed + 60, size=14, load=0.4)
            costs = {}
            for policy in Policy.ordered():
                try:
                    costs[policy] = exact_cost(problem, policy)
                except InfeasibleError:
                    costs[policy] = math.inf
            assert costs[Policy.MULTIPLE] <= costs[Policy.UPWARDS] + 1e-6
            assert costs[Policy.UPWARDS] <= costs[Policy.CLOSEST] + 1e-6

    def test_exact_with_qos_respects_bounds(self, qos_tree):
        problem = replica_cost_problem(qos_tree, constraints=ConstraintSet.qos_distance())
        solution = exact_solution(problem, Policy.MULTIPLE)
        assert_valid(problem, solution)
        assert "leaf" in solution.placement  # the qos=1 client pins a replica

    def test_exact_fractional_requests_supported(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=5)
            .add_node("a", capacity=5, parent="root")
            .add_client("c", requests=7.5, parent="a")
            .build()
        )
        problem = replica_cost_problem(tree)
        solution = exact_solution(problem, Policy.MULTIPLE)
        assert solution.cost(problem) == pytest.approx(10.0)

    def test_metadata_reports_objective(self, small_counting_problem):
        solution = exact_solution(small_counting_problem, Policy.MULTIPLE)
        assert solution.metadata["objective"] == pytest.approx(2.0)
