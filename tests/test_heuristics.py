"""Tests of the eight placement heuristics and the MixedBest combiner."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import (
    ClosestBottomUp,
    ClosestTopDownAll,
    ClosestTopDownLargestFirst,
    MixedBest,
    MultipleBottomUp,
    MultipleGreedy,
    MultipleTopDown,
    UpwardsBigClientFirst,
    UpwardsTopDown,
    available_heuristics,
    get_heuristic,
    heuristics_for_policy,
    solve_with,
)
from repro.algorithms.base import PlacementHeuristic
from repro.core.builder import TreeBuilder
from repro.core.exceptions import InfeasibleError
from repro.core.policies import Policy
from repro.core.problem import replica_cost_problem, replica_counting_problem
from repro.workloads import reference_trees
from tests.conftest import assert_valid, make_random_problem

CLOSEST_HEURISTICS = [ClosestTopDownAll, ClosestTopDownLargestFirst, ClosestBottomUp]
UPWARDS_HEURISTICS = [UpwardsTopDown, UpwardsBigClientFirst]
MULTIPLE_HEURISTICS = [MultipleTopDown, MultipleBottomUp, MultipleGreedy]
ALL_HEURISTICS = CLOSEST_HEURISTICS + UPWARDS_HEURISTICS + MULTIPLE_HEURISTICS


class TestRegistry:
    def test_all_paper_heuristics_registered(self):
        names = available_heuristics()
        for expected in ("CTDA", "CTDLF", "CBU", "UTD", "UBCF", "MTD", "MBU", "MG", "MixedBest"):
            assert expected in names

    def test_get_heuristic_by_name_case_insensitive(self):
        assert isinstance(get_heuristic("ctda"), ClosestTopDownAll)
        assert isinstance(get_heuristic("MG"), MultipleGreedy)

    def test_get_heuristic_accepts_instances_and_classes(self):
        instance = MultipleGreedy()
        assert get_heuristic(instance) is instance
        assert isinstance(get_heuristic(MultipleGreedy), MultipleGreedy)

    def test_get_unknown_heuristic_raises(self):
        with pytest.raises(KeyError):
            get_heuristic("does-not-exist")

    def test_heuristics_for_policy(self):
        closest_names = {h.name for h in heuristics_for_policy(Policy.CLOSEST)}
        assert closest_names == {"CTDA", "CTDLF", "CBU"}
        upwards_names = {h.name for h in heuristics_for_policy(Policy.UPWARDS)}
        assert upwards_names == {"UTD", "UBCF"}

    def test_solve_with_helper(self, small_counting_problem):
        solution = solve_with("MG", small_counting_problem)
        assert solution.algorithm == "MG"

    def test_policy_attribute_matches_group(self):
        for cls in CLOSEST_HEURISTICS:
            assert cls.policy is Policy.CLOSEST
        for cls in UPWARDS_HEURISTICS:
            assert cls.policy is Policy.UPWARDS
        for cls in MULTIPLE_HEURISTICS:
            assert cls.policy is Policy.MULTIPLE


@pytest.mark.parametrize("heuristic_cls", ALL_HEURISTICS, ids=lambda c: c.name)
class TestAllHeuristicsCommonBehaviour:
    def test_valid_on_easy_instance(self, heuristic_cls):
        problem = make_random_problem(5, size=30, load=0.2)
        solution = heuristic_cls().solve(problem)
        assert_valid(problem, solution, policy=heuristic_cls.policy)

    def test_valid_on_heterogeneous_instance(self, heuristic_cls):
        problem = make_random_problem(9, size=30, load=0.2, homogeneous=False)
        solution = heuristic_cls().solve(problem)
        assert_valid(problem, solution, policy=heuristic_cls.policy)

    def test_try_solve_returns_none_on_impossible_instance(self, heuristic_cls):
        # One node of capacity 1 facing 5 requests: infeasible for everyone.
        tree = (
            TreeBuilder()
            .add_node("r", capacity=1)
            .add_client("c", requests=5, parent="r")
            .build()
        )
        problem = replica_cost_problem(tree)
        assert heuristic_cls().try_solve(problem) is None
        with pytest.raises(InfeasibleError):
            heuristic_cls().solve(problem)

    def test_solution_reports_algorithm_name(self, heuristic_cls):
        problem = make_random_problem(5, size=30, load=0.2)
        assert heuristic_cls().solve(problem).algorithm == heuristic_cls.name

    def test_cost_at_least_trivial_lower_bound(self, heuristic_cls):
        from repro.core.costs import trivial_lower_bound

        problem = make_random_problem(6, size=30, load=0.3)
        solution = heuristic_cls().try_solve(problem)
        if solution is not None:
            assert solution.cost(problem) >= trivial_lower_bound(problem) - 1e-9


class TestClosestHeuristics:
    def test_figure1a_all_closest_heuristics_find_single_replica(self):
        problem = replica_counting_problem(reference_trees.figure1_tree("a"))
        for cls in CLOSEST_HEURISTICS:
            solution = cls().solve(problem)
            assert solution.replica_count() == 1

    def test_figure1b_closest_infeasible(self):
        problem = replica_counting_problem(reference_trees.figure1_tree("b"))
        for cls in CLOSEST_HEURISTICS:
            assert cls().try_solve(problem) is None

    def test_every_client_served_by_lowest_replica(self):
        problem = make_random_problem(11, size=30, load=0.2)
        for cls in CLOSEST_HEURISTICS:
            solution = cls().solve(problem)
            assert_valid(problem, solution, policy=Policy.CLOSEST)

    def test_ctda_covers_whole_subtree_with_one_replica_when_possible(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=100)
            .add_node("a", capacity=100, parent="root")
            .add_client("c1", requests=10, parent="a")
            .add_client("c2", requests=10, parent="a")
            .build()
        )
        solution = ClosestTopDownAll().solve(replica_counting_problem(tree))
        assert solution.replica_count() == 1
        assert "root" in solution.placement

    def test_cbu_places_low(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=100)
            .add_node("a", capacity=100, parent="root")
            .add_client("c1", requests=10, parent="a")
            .add_client("c2", requests=10, parent="a")
            .build()
        )
        solution = ClosestBottomUp().solve(replica_counting_problem(tree))
        assert "a" in solution.placement  # bottom-up prefers the deep node

    def test_ctdlf_explores_heaviest_subtree_first(self):
        # Two subtrees; only the heavy one can be covered by its own node, the
        # light one must wait for the root in a later sweep.
        tree = (
            TreeBuilder()
            .add_node("root", capacity=30)
            .add_node("heavy", capacity=30, parent="root")
            .add_node("light", capacity=30, parent="root")
            .add_client("h1", requests=20, parent="heavy")
            .add_client("l1", requests=5, parent="light")
            .build()
        )
        solution = ClosestTopDownLargestFirst().solve(replica_counting_problem(tree))
        assert_valid(
            replica_counting_problem(tree), solution, policy=Policy.CLOSEST
        )

    def test_closest_heuristics_find_same_feasibility(self):
        # Paper observation: the three Closest heuristics succeed on the same
        # instances (they may differ in cost).
        for seed in range(4):
            problem = make_random_problem(seed, size=40, load=0.4)
            outcomes = {
                cls.name: cls().try_solve(problem) is not None
                for cls in CLOSEST_HEURISTICS
            }
            assert len(set(outcomes.values())) == 1, outcomes


class TestUpwardsHeuristics:
    def test_figure1b_upwards_feasible_with_two_replicas(self):
        problem = replica_counting_problem(reference_trees.figure1_tree("b"))
        for cls in UPWARDS_HEURISTICS:
            solution = cls().solve(problem)
            assert solution.replica_count() == 2

    def test_figure1c_upwards_infeasible(self):
        problem = replica_counting_problem(reference_trees.figure1_tree("c"))
        for cls in UPWARDS_HEURISTICS:
            assert cls().try_solve(problem) is None

    def test_single_server_property(self):
        problem = make_random_problem(13, size=40, load=0.3)
        for cls in UPWARDS_HEURISTICS:
            solution = cls().try_solve(problem)
            if solution is None:
                continue
            for client_id in problem.tree.client_ids:
                assert len(solution.assignment.servers_of(client_id)) <= 1

    def test_ubcf_uses_best_fit(self, hetero_problem):
        solution = UpwardsBigClientFirst().solve(hetero_problem)
        # The big client cb1 (15) does not fit b (20)? it does; best fit keeps
        # it low rather than on the 100-capacity root.
        assert solution.assignment.servers_of("cb1") == ("b",)

    def test_utd_first_pass_places_on_exhausted_nodes(self):
        tree = reference_trees.figure2_tree(3)
        problem = replica_counting_problem(tree)
        solution = UpwardsTopDown().try_solve(problem)
        # UTD fails on Figure 2 (the root client is stranded after pass 1) --
        # this is the paper's observation that UTD finds fewer solutions.
        assert solution is None

    def test_ubcf_solves_figure2(self):
        problem = replica_counting_problem(reference_trees.figure2_tree(3))
        solution = UpwardsBigClientFirst().solve(problem)
        assert_valid(problem, solution, policy=Policy.UPWARDS)


class TestMultipleHeuristics:
    def test_figure1c_multiple_feasible(self):
        problem = replica_counting_problem(reference_trees.figure1_tree("c"))
        for cls in MULTIPLE_HEURISTICS:
            solution = cls().solve(problem)
            assert solution.replica_count() == 2

    def test_mg_always_succeeds_on_feasible_instances(self):
        from repro.core.feasibility import placement_is_feasible

        for seed in range(6):
            problem = make_random_problem(seed, size=40, load=0.6)
            feasible = placement_is_feasible(
                problem, problem.tree.node_ids, Policy.MULTIPLE
            )
            mg = MultipleGreedy().try_solve(problem)
            assert (mg is not None) == feasible

    def test_requests_may_be_split(self, chain_tree):
        problem = replica_cost_problem(chain_tree)
        solution = MultipleGreedy().solve(problem)
        assert len(solution.assignment.servers_of("c")) == 2

    def test_mtd_fills_exhausted_servers_completely(self):
        problem = make_random_problem(3, size=30, load=0.5)
        solution = MultipleTopDown().try_solve(problem)
        if solution is None:
            pytest.skip("MTD failed on this draw")
        assert_valid(problem, solution)

    def test_mbu_smallest_first_order(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=100)
            .add_node("a", capacity=10, parent="root")
            .add_client("small1", requests=3, parent="a")
            .add_client("small2", requests=4, parent="a")
            .add_client("big", requests=9, parent="a")
            .build()
        )
        problem = replica_cost_problem(tree)
        solution = MultipleBottomUp().solve(problem)
        # Node a is exhausted (16 >= 10) and drains the small clients first.
        assert solution.assignment.amount("small1", "a") == 3
        assert solution.assignment.amount("small2", "a") == 4
        assert_valid(problem, solution)


class TestMixedBest:
    def test_never_worse_than_any_component(self):
        problem = make_random_problem(21, size=40, load=0.4)
        mixed = MixedBest().solve(problem)
        mixed_cost = mixed.cost(problem)
        for name in ("CTDA", "CTDLF", "CBU", "UTD", "UBCF", "MTD", "MBU", "MG"):
            component = get_heuristic(name).try_solve(problem)
            if component is not None:
                assert mixed_cost <= component.cost(problem) + 1e-9

    def test_succeeds_whenever_mg_succeeds(self):
        problem = make_random_problem(8, size=40, load=0.7)
        mg = MultipleGreedy().try_solve(problem)
        mixed = MixedBest().try_solve(problem)
        assert (mixed is not None) == (mg is not None)

    def test_reports_selected_component(self, small_counting_problem):
        mixed = MixedBest().solve(small_counting_problem)
        assert mixed.metadata["selected"] in (
            "CTDA", "CTDLF", "CBU", "UTD", "UBCF", "MTD", "MBU", "MG",
        )

    def test_custom_component_list(self, small_counting_problem):
        mixed = MixedBest(components=["MG"]).solve(small_counting_problem)
        assert mixed.metadata["selected"] == "MG"

    def test_reported_policy_is_multiple(self, small_counting_problem):
        assert MixedBest().solve(small_counting_problem).policy is Policy.MULTIPLE
