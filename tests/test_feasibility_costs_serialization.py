"""Unit tests for assignment derivation, cost bounds and JSON serialization."""

from __future__ import annotations

import math

import pytest

from repro.core.builder import TreeBuilder
from repro.core.constraints import ConstraintSet
from repro.core.costs import (
    capacity_cost_lower_bound,
    greedy_cost_lower_bound,
    placement_cost,
    request_lower_bound,
    trivial_lower_bound,
)
from repro.core.exceptions import InfeasibleError, TreeStructureError
from repro.core.feasibility import (
    assignment_for_placement,
    closest_assignment,
    multiple_assignment,
    placement_is_feasible,
    upwards_assignment,
)
from repro.core.policies import Policy
from repro.core.problem import replica_cost_problem, replica_counting_problem
from repro.core.serialization import (
    load_tree,
    save_tree,
    solution_from_dict,
    solution_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.core.validation import validate_solution
from tests.conftest import assert_valid


class TestClosestAssignment:
    def test_forced_assignment(self, small_problem):
        sol = closest_assignment(small_problem, ["n1", "root"])
        assert sol.assignment.amount("c1", "n1") == 7
        assert sol.assignment.amount("c3", "root") == 2
        assert_valid(small_problem, sol, policy=Policy.CLOSEST)

    def test_client_without_replica_ancestor_fails(self, small_problem):
        with pytest.raises(InfeasibleError):
            closest_assignment(small_problem, ["n1"])  # c3 uncovered

    def test_capacity_overload_fails(self, small_problem):
        # root alone must absorb 14 > 10 requests
        with pytest.raises(InfeasibleError):
            closest_assignment(small_problem, ["root"])

    def test_qos_violation_fails(self, qos_tree):
        problem = replica_cost_problem(qos_tree, constraints=ConstraintSet.qos_distance())
        with pytest.raises(InfeasibleError):
            closest_assignment(problem, ["root"])


class TestMultipleAssignment:
    def test_split_across_levels(self, chain_tree):
        problem = replica_cost_problem(chain_tree)
        sol = multiple_assignment(problem, ["low", "mid"])
        assert sol.assignment.client_total("c") == 6
        assert sol.assignment.server_load("low") == 4
        assert sol.assignment.server_load("mid") == 2
        assert_valid(problem, sol)

    def test_infeasible_when_capacity_missing(self, chain_tree):
        problem = replica_cost_problem(chain_tree)
        with pytest.raises(InfeasibleError):
            multiple_assignment(problem, ["low"])

    def test_respects_qos(self, qos_tree):
        problem = replica_cost_problem(qos_tree, constraints=ConstraintSet.qos_distance())
        sol = multiple_assignment(problem, ["leaf", "mid", "root"])
        # "near" (qos=1) must be served at "leaf" only.
        assert sol.assignment.servers_of("near") == ("leaf",)
        assert_valid(problem, sol)

    def test_full_placement_feasibility_matches_lp(self, random_homogeneous_problem):
        from repro.lp.bounds import lp_lower_bound

        greedy_feasible = placement_is_feasible(
            random_homogeneous_problem,
            random_homogeneous_problem.tree.node_ids,
            Policy.MULTIPLE,
        )
        lp_feasible = lp_lower_bound(random_homogeneous_problem).feasible
        assert greedy_feasible == lp_feasible


class TestUpwardsAssignment:
    def test_best_fit_assignment(self, small_problem):
        sol = upwards_assignment(small_problem, ["n1", "root"])
        assert_valid(small_problem, sol, policy=Policy.UPWARDS)

    def test_no_eligible_ancestor_fails(self, small_problem):
        with pytest.raises(InfeasibleError):
            upwards_assignment(small_problem, ["n1"])

    def test_exact_mode_finds_packing_best_fit_might_miss(self):
        # Two servers of capacity 10; clients 6, 5, 5, 4. Wholes must pack as
        # {6,4} and {5,5}.
        tree = (
            TreeBuilder()
            .add_node("root", capacity=10)
            .add_node("mid", capacity=10, parent="root")
            .add_client("a", requests=6, parent="mid")
            .add_client("b", requests=5, parent="mid")
            .add_client("c", requests=5, parent="mid")
            .add_client("d", requests=4, parent="mid")
            .build()
        )
        problem = replica_cost_problem(tree)
        sol = upwards_assignment(problem, ["root", "mid"], exact=True)
        assert_valid(problem, sol, policy=Policy.UPWARDS)
        loads = sol.assignment.server_loads()
        assert loads["root"] == 10 and loads["mid"] == 10

    def test_dispatcher(self, small_problem):
        for policy in Policy.ordered():
            sol = assignment_for_placement(small_problem, ["n1", "root"], policy)
            assert validate_solution(small_problem, sol, policy=policy).valid

    def test_placement_is_feasible_false(self, small_problem):
        assert not placement_is_feasible(small_problem, [], Policy.MULTIPLE)
        assert placement_is_feasible(small_problem, ["n1", "root"], Policy.CLOSEST)


class TestCostBounds:
    def test_placement_cost(self, hetero_problem):
        assert placement_cost(hetero_problem, ["a", "b"]) == 30
        from repro.core.solution import Placement

        assert placement_cost(hetero_problem, Placement(["root"])) == 100

    def test_request_lower_bound(self, small_tree):
        assert request_lower_bound(small_tree) == 2  # 12 requests / capacity 10

    def test_request_lower_bound_zero_load(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=10)
            .add_client("c", requests=0, parent="r")
            .build()
        )
        assert request_lower_bound(tree) == 0

    def test_request_lower_bound_requires_homogeneous(self, hetero_tree):
        with pytest.raises(TreeStructureError):
            request_lower_bound(hetero_tree)

    def test_capacity_cost_lower_bound(self, small_tree):
        assert capacity_cost_lower_bound(small_tree) == 12

    def test_greedy_cost_lower_bound_prefers_cheap_rate(self, hetero_problem):
        # All nodes have cost == capacity, so the bound equals total requests.
        assert greedy_cost_lower_bound(hetero_problem) == pytest.approx(29)

    def test_greedy_cost_lower_bound_infeasible_is_inf(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=1)
            .add_client("c", requests=5, parent="r")
            .build()
        )
        assert math.isinf(greedy_cost_lower_bound(replica_cost_problem(tree)))

    def test_trivial_lower_bound_dispatch(self, small_tree, hetero_tree):
        assert trivial_lower_bound(replica_counting_problem(small_tree)) == 2
        assert trivial_lower_bound(replica_cost_problem(hetero_tree)) == 29


class TestSerialization:
    def test_tree_roundtrip(self, hetero_tree, tmp_path):
        payload = tree_to_dict(hetero_tree)
        rebuilt = tree_from_dict(payload)
        assert rebuilt == hetero_tree
        path = save_tree(hetero_tree, tmp_path / "tree.json")
        assert load_tree(path) == hetero_tree

    def test_infinite_bounds_encoded_as_null(self, small_tree):
        payload = tree_to_dict(small_tree)
        assert payload["clients"][0]["qos"] is None
        assert payload["links"][0]["bandwidth"] is None

    def test_qos_roundtrip(self, qos_tree):
        rebuilt = tree_from_dict(tree_to_dict(qos_tree))
        assert rebuilt.client("near").qos == 1
        assert rebuilt.link("mid").comm_time == 2.0

    def test_solution_roundtrip(self, small_problem):
        sol = closest_assignment(small_problem, ["n1", "root"])
        payload = solution_to_dict(sol)
        rebuilt = solution_from_dict(payload)
        assert rebuilt.placement == sol.placement
        assert rebuilt.assignment == sol.assignment
        assert rebuilt.policy is Policy.CLOSEST

    def test_solution_dict_is_sorted_and_json_safe(self, small_problem):
        import json

        sol = closest_assignment(small_problem, ["n1", "root"])
        text = json.dumps(solution_to_dict(sol))
        assert "n1" in text
