"""Tests of the high-level API and the command-line interface."""

from __future__ import annotations

import math

import pytest

from repro import Policy, compare_policies, lower_bound, solve
from repro.api import as_problem
from repro.cli import main
from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.serialization import save_tree
from repro.workloads import generate_tree, reference_trees
from tests.conftest import assert_valid


class TestAsProblem:
    def test_wraps_tree_with_defaults(self, small_tree):
        problem = as_problem(small_tree)
        assert isinstance(problem, ReplicaPlacementProblem)
        assert problem.kind is ProblemKind.REPLICA_COST

    def test_overrides_on_existing_problem(self, small_problem):
        updated = as_problem(
            small_problem,
            constraints=ConstraintSet.qos_distance(),
            kind=ProblemKind.REPLICA_COUNTING,
        )
        assert updated.constraints.has_qos
        assert updated.kind is ProblemKind.REPLICA_COUNTING

    def test_passthrough_when_no_override(self, small_problem):
        assert as_problem(small_problem) is small_problem


class TestSolve:
    def test_uses_optimal_algorithm_on_homogeneous_multiple(self, small_tree):
        solution = solve(small_tree, policy="multiple", kind=ProblemKind.REPLICA_COUNTING)
        assert solution.algorithm == "MultipleOptimalHomogeneous"

    def test_policy_parameter_accepts_strings(self, small_tree):
        for name in ("closest", "upwards", "multiple"):
            try:
                solution = solve(small_tree, policy=name)
            except InfeasibleError:
                continue
            assert solution.policy is Policy.parse(name)

    def test_forced_algorithm(self, small_tree):
        solution = solve(small_tree, policy="multiple", algorithm="MG")
        assert solution.algorithm == "MG"

    def test_infeasible_raises(self):
        problem = reference_trees.figure1_tree("c")
        with pytest.raises(InfeasibleError):
            solve(problem, policy="closest")

    def test_heterogeneous_portfolio(self, hetero_tree):
        solution = solve(hetero_tree, policy="multiple")
        assert_valid(as_problem(hetero_tree), solution)

    def test_solutions_validated(self, random_heterogeneous_problem):
        solution = solve(random_heterogeneous_problem, policy="multiple")
        assert_valid(random_heterogeneous_problem, solution)


class TestComparePolicies:
    def test_figure1_matrix(self):
        results = compare_policies(reference_trees.figure1_tree("b"))
        assert results[Policy.CLOSEST] is None
        assert results[Policy.UPWARDS] is not None
        assert results[Policy.MULTIPLE] is not None

    def test_subset_of_policies(self, small_tree):
        results = compare_policies(small_tree, policies=["multiple"])
        assert list(results) == [Policy.MULTIPLE]

    def test_costs_follow_dominance_when_all_succeed(self):
        tree = generate_tree(size=30, target_load=0.2, seed=41)
        results = compare_policies(tree, kind=ProblemKind.REPLICA_COUNTING)
        problem = as_problem(tree, kind=ProblemKind.REPLICA_COUNTING)
        costs = {
            policy: (sol.cost(problem) if sol else math.inf)
            for policy, sol in results.items()
        }
        assert costs[Policy.MULTIPLE] <= costs[Policy.CLOSEST] + 1e-9


class TestLowerBoundAPI:
    def test_mixed_default(self, small_tree):
        value = lower_bound(small_tree, kind=ProblemKind.REPLICA_COUNTING)
        assert value == pytest.approx(2.0)

    def test_rational_never_exceeds_mixed(self, random_homogeneous_problem):
        rational = lower_bound(random_homogeneous_problem, method="rational")
        mixed = lower_bound(random_homogeneous_problem, method="mixed")
        assert rational <= mixed + 1e-6

    def test_trivial_method(self, small_tree):
        assert lower_bound(small_tree, method="trivial") == pytest.approx(12.0)

    def test_unknown_method_rejected(self, small_tree):
        with pytest.raises(ValueError):
            lower_bound(small_tree, method="magic")


class TestCLI:
    def test_generate_solve_compare_roundtrip(self, tmp_path, capsys):
        tree_path = tmp_path / "tree.json"
        assert main(["generate", str(tree_path), "--size", "30", "--load", "0.3", "--seed", "5"]) == 0
        assert tree_path.exists()
        assert main(["solve", str(tree_path), "--policy", "multiple", "--counting"]) == 0
        out = capsys.readouterr().out
        assert "replica" in out.lower()
        assert main(["compare", str(tree_path), "--counting"]) == 0
        out = capsys.readouterr().out
        assert "multiple" in out

    def test_solve_reports_infeasible(self, tmp_path, capsys):
        path = tmp_path / "fig1c.json"
        save_tree(reference_trees.figure1_tree("c"), path)
        code = main(["solve", str(path), "--policy", "closest", "--counting"])
        assert code == 2
        assert "no solution" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, capsys):
        assert main(["solve", "/does/not/exist.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_campaign_command(self, capsys):
        code = main(
            [
                "campaign",
                "--trees-per-lambda",
                "1",
                "--min-size",
                "15",
                "--max-size",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Percentage of success" in out and "Relative cost" in out

    def test_forced_algorithm_flag(self, tmp_path, capsys):
        tree_path = tmp_path / "tree.json"
        main(["generate", str(tree_path), "--size", "24", "--load", "0.2", "--seed", "9"])
        capsys.readouterr()
        assert main(["solve", str(tree_path), "--algorithm", "MG"]) == 0
        assert "[MG]" in capsys.readouterr().out


class TestBenchCLI:
    def test_list_names_the_bench_suites(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench suites" in out
        assert "test_lp_speed.py" in out
        assert "test_engine_speed.py" in out

    def test_collect_only_selects_bench_marked_tests(self, capsys):
        # Collection-only keeps the tier-1 suite fast while still proving the
        # sub-command wires pytest, the marker filter and -k together.
        assert main(["bench", "--collect-only", "-k", "lp"]) == 0
        out = capsys.readouterr().out
        assert "test_lp_speed" in out
