"""Serving-edge tests: batched envelopes, metrics, hardening, the loop server.

Covers this PR's acceptance criteria head on:

* **batch envelopes** -- order-matched replies bit-identical to the same
  ops sent one envelope at a time; per-item error envelopes that never
  poison neighbouring items; consecutive same-session items grouped under
  **one** pool checkout; implicit session inheritance across a trajectory
  (update re-keys mid-batch and the following items ride the new key);
  nesting rejected; snapshot upkeep after in-batch mutations;
* **metrics** -- per-op counters surface identically in the ``stats`` op
  and the ``GET /metrics`` Prometheus exposition (well-formed ``# HELP`` /
  ``# TYPE`` pairs, ``_total`` counters, trailing newline);
* **HTTP hardening** -- ``GET /stats?format=json`` routes (query strings
  survive), hostile ``Content-Length`` values get 4xx replies instead of
  hanging a worker, a client hanging up mid-reply costs one stderr line;
* **snapshot restore race** -- a snapshot unlinked between glob and stat
  is skipped, not fatal;
* **loop server** -- TCP and pipe peers served from one selectors thread,
  pipelined batches, EOF shutdown, slow-client eviction;
* **load harness** -- deterministic schedules, report round-trips, batched
  runs answering the same schedule as unbatched runs.
"""

from __future__ import annotations

import io
import json
import os
import socket
import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List

import pytest

from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.results import result_from_dict
from repro.core.serialization import problem_to_dict
from repro.serving import (
    LoadgenConfig,
    LoopServer,
    PoolStats,
    ReproServer,
    SessionPool,
    ServingError,
    connect,
    render_prometheus,
    run_loadtest,
)
from repro.serving.loadgen import build_schedule
from repro.serving.protocol import MAX_BATCH_ITEMS, handle_envelope
from repro.serving.server import make_http_server, serve_stdio, _Handler
from repro.serving.snapshot import restore_pool, save_pool, snapshot_path
from repro.session import PlacementSession, SolveResult
from repro.workloads.generator import GeneratorConfig, TreeGenerator


def make_problem(seed: int, *, size: int = 20) -> ReplicaPlacementProblem:
    tree = TreeGenerator(seed).generate(
        GeneratorConfig(size=size, target_load=0.4)
    )
    return ReplicaPlacementProblem(tree=tree, kind=ProblemKind.REPLICA_COUNTING)


def canonical(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Strip wall-clock noise and transport metadata (as test_serving does)."""

    def strip(value):
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items() if k != "runtime"}
        if isinstance(value, list):
            return [strip(item) for item in value]
        return value

    stripped = strip(payload)
    stripped.pop("fingerprint", None)
    return stripped


def first_client_id(problem: ReplicaPlacementProblem) -> Any:
    return next(iter(problem.tree.clients())).id


# --------------------------------------------------------------------------- #
# batch envelopes
# --------------------------------------------------------------------------- #
class TestBatchEnvelope:
    def test_replies_order_matched_and_bit_identical(self):
        problem = make_problem(41)
        payload = problem_to_dict(problem)
        singles = ReproServer(SessionPool(4))
        one_by_one = [
            singles.handle({"op": "solve", "problem": payload}),
            singles.handle({"op": "bound", "problem": payload}),
            singles.handle({"op": "compare", "problem": payload}),
        ]
        batched = ReproServer(SessionPool(4)).handle(
            {
                "op": "batch",
                "requests": [
                    {"op": "solve", "problem": payload},
                    {"op": "bound", "problem": payload},
                    {"op": "compare", "problem": payload},
                ],
            }
        )
        assert batched["type"] == "batch_result"
        assert [canonical(r) for r in batched["results"]] == [
            canonical(r) for r in one_by_one
        ]

    def test_bad_item_never_poisons_the_batch(self):
        problem = make_problem(42)
        payload = problem_to_dict(problem)
        reply = ReproServer(SessionPool(4)).handle(
            {
                "op": "batch",
                "requests": [
                    {"op": "solve", "problem": payload},
                    {"op": "nonsense"},
                    {"op": "solve", "fingerprint": "not-resident"},
                    {"op": "bound", "problem": payload},
                    "not an object",
                ],
            }
        )
        kinds = [r.get("type") for r in reply["results"]]
        assert kinds == [
            "solve_result", "error", "error", "bound_result", "error"
        ]
        codes = [
            r["error"]["code"] for r in reply["results"] if r["type"] == "error"
        ]
        assert codes == ["bad_request", "unknown_fingerprint", "bad_request"]

    def test_consecutive_items_share_one_checkout(self):
        """The tentpole: a same-session run costs one pool checkout."""
        pool = SessionPool(4)
        payload = problem_to_dict(make_problem(43))
        reply = ReproServer(pool).handle(
            {
                "op": "batch",
                "requests": [{"op": "solve", "problem": payload}]
                + [{"op": "bound"}, {"op": "solve"}, {"op": "compare"}],
            }
        )
        assert all(r["type"] != "error" for r in reply["results"])
        stats = pool.stats()
        # One miss creates the session; grouped items never re-checkout.
        assert (stats.hits, stats.misses) == (0, 1)

    def test_trajectory_inherits_session_across_update(self):
        """update re-keys mid-batch; later unaddressed items follow it."""
        problem = make_problem(44)
        payload = problem_to_dict(problem)
        client = first_client_id(problem)
        server = ReproServer(SessionPool(4))
        reply = server.handle(
            {
                "op": "batch",
                "requests": [
                    {"op": "solve", "problem": payload},
                    {
                        "op": "update",
                        "params": {
                            "requests": [{"client": client, "rate": 7}]
                        },
                    },
                    {"op": "solve"},
                ],
            }
        )
        results = reply["results"]
        assert [r["type"] for r in results] == ["solve_result"] * 3
        assert results[0]["fingerprint"] != results[1]["fingerprint"]
        assert results[1]["fingerprint"] == results[2]["fingerprint"]
        # The batched trajectory equals the same trajectory on a session.
        local = PlacementSession(problem)
        assert canonical(results[0]) == canonical(
            local.solve(on_error="none").to_dict()
        )
        local.update(requests={client: 7.0})
        assert canonical(results[2]) == canonical(
            local.solve(on_error="none").to_dict()
        )

    def test_leading_unaddressed_item_is_bad_request(self):
        reply = ReproServer(SessionPool(2)).handle(
            {"op": "batch", "requests": [{"op": "solve"}]}
        )
        assert reply["results"][0]["error"]["code"] == "bad_request"

    def test_batches_do_not_nest(self):
        reply = ReproServer(SessionPool(2)).handle(
            {"op": "batch", "requests": [{"op": "batch", "requests": []}]}
        )
        item = reply["results"][0]
        assert item["error"]["code"] == "bad_request"
        assert "nest" in item["error"]["message"]

    def test_requests_shape_and_cap_enforced(self):
        server = ReproServer(SessionPool(2))
        bad = server.handle({"op": "batch", "requests": "nope"})
        assert bad["error"]["code"] == "bad_request"
        over = server.handle(
            {
                "op": "batch",
                "requests": [{"op": "stats"}] * (MAX_BATCH_ITEMS + 1),
            }
        )
        assert over["error"]["code"] == "bad_request"
        assert str(MAX_BATCH_ITEMS) in over["error"]["message"]
        empty = server.handle({"op": "batch", "requests": []})
        assert empty == {"type": "batch_result", "results": []}

    def test_batch_over_stdio_is_one_reply_line(self):
        payload = problem_to_dict(make_problem(45))
        stdin = io.StringIO(
            json.dumps(
                {
                    "op": "batch",
                    "requests": [
                        {"op": "solve", "problem": payload},
                        {"op": "bound"},
                    ],
                }
            )
            + "\n"
        )
        stdout = io.StringIO()
        serve_stdio(ReproServer(capacity=4), stdin, stdout)
        lines = stdout.getvalue().splitlines()
        assert len(lines) == 1
        reply = json.loads(lines[0])
        assert [r["type"] for r in reply["results"]] == [
            "solve_result",
            "bound_result",
        ]

    def test_in_batch_update_refreshes_snapshots(self, tmp_path):
        problem = make_problem(46)
        client = first_client_id(problem)
        server = ReproServer(SessionPool(4), snapshot_dir=tmp_path)
        reply = server.handle(
            {
                "op": "batch",
                "requests": [
                    {"op": "solve", "problem": problem_to_dict(problem)},
                    {
                        "op": "update",
                        "params": {
                            "requests": [{"client": client, "rate": 9}]
                        },
                    },
                ],
            }
        )
        old_key = reply["results"][0]["fingerprint"]
        new_key = reply["results"][1]["fingerprint"]
        assert new_key != old_key
        assert snapshot_path(tmp_path, new_key).exists()
        # The superseded snapshot is retired, not left to restore a stale
        # duplicate of this tenant on the next boot.
        assert not snapshot_path(tmp_path, old_key).exists()

    def test_mutations_collected_on_handled_request(self):
        pool = SessionPool(4)
        problem = make_problem(47)
        client = first_client_id(problem)
        handled = handle_envelope(
            pool,
            {
                "op": "batch",
                "requests": [
                    {"op": "solve", "problem": problem_to_dict(problem)},
                    {
                        "op": "update",
                        "params": {
                            "requests": [{"client": client, "rate": 3}]
                        },
                    },
                    {
                        "op": "update",
                        "params": {
                            "requests": [{"client": client, "rate": 4}]
                        },
                    },
                ],
            },
        )
        assert handled.mutated
        assert len(handled.mutations) == 2
        entries = {id(entry) for entry, _previous in handled.mutations}
        assert len(entries) == 1  # same session mutated twice

    def test_client_batch_returns_results_and_errors_in_place(self):
        problem = make_problem(48)
        client = connect(ReproServer(SessionPool(4)))
        results = client.batch(
            [
                {"op": "solve", "problem": problem_to_dict(problem)},
                {"op": "solve", "fingerprint": "missing"},
                {"op": "bound"},
            ]
        )
        assert isinstance(results[0], SolveResult)
        assert isinstance(results[1], ServingError)
        assert results[1].code == "unknown_fingerprint"
        # A failed switch releases the previous session (never hold two
        # session locks), so the next unaddressed item has nothing to
        # inherit and must re-address explicitly.
        assert isinstance(results[2], ServingError)
        assert results[2].code == "bad_request"
        with pytest.raises(ServingError):
            client.batch([{"op": "stats"}] * (MAX_BATCH_ITEMS + 1))


# --------------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_observe_op_aggregates(self):
        pool = SessionPool(2)
        pool.observe_op("solve", 0.25)
        pool.observe_op("solve", 0.75, error=True)
        pool.observe_op("stats", 0.1)
        ops = pool.stats().ops
        assert ops["solve"]["count"] == 2
        assert ops["solve"]["errors"] == 1
        assert ops["solve"]["seconds_total"] == pytest.approx(1.0)
        assert ops["solve"]["seconds_max"] == pytest.approx(0.75)
        assert ops["stats"]["count"] == 1
        assert "envelopes served" in pool.stats().describe()

    def test_every_envelope_and_batch_item_is_counted(self):
        server = ReproServer(SessionPool(4))
        payload = problem_to_dict(make_problem(51))
        server.handle({"op": "solve", "problem": payload})
        server.handle(
            {
                "op": "batch",
                "requests": [
                    {"op": "solve", "problem": payload},
                    {"op": "bound"},
                    {"op": "wat"},
                ],
            }
        )
        server.handle([1, 2, 3])  # not even an object
        ops = server.pool.stats().ops
        assert ops["solve"]["count"] == 2
        assert ops["bound"]["count"] == 1
        assert ops["batch"]["count"] == 1
        assert ops["_unknown"] == {
            "count": 1,
            "errors": 1,
            "seconds_total": ops["_unknown"]["seconds_total"],
            "seconds_max": ops["_unknown"]["seconds_max"],
        }
        assert ops["_invalid"]["errors"] == 1

    def test_pool_stats_ops_round_trip(self):
        pool = SessionPool(2)
        pool.observe_op("solve", 0.5)
        stats = pool.stats()
        rebuilt = result_from_dict(stats.to_dict())
        assert isinstance(rebuilt, PoolStats)
        assert rebuilt.ops == stats.ops

    def test_render_prometheus_well_formed(self):
        server = ReproServer(SessionPool(4))
        server.handle({"op": "solve", "problem": problem_to_dict(make_problem(52))})
        stats = server.pool.stats()
        text = render_prometheus(stats)
        assert text.endswith("\n")
        lines = text.splitlines()
        # Every sample line's metric carries a preceding HELP and TYPE.
        declared = set()
        for line in lines:
            if line.startswith("# HELP "):
                declared.add(line.split()[2])
            elif line.startswith("# TYPE "):
                assert line.split()[2] in declared
            else:
                name = line.split("{")[0].split()[0]
                assert name in declared
        # Counters end in _total (except explicitly-gauge seconds_max).
        assert 'repro_requests_total{op="solve"} 1' in text
        assert f"repro_pool_misses_total {stats.misses}" in lines
        assert f"repro_solves_total {stats.solves}" in lines

    def test_metrics_and_stats_op_agree(self):
        server = ReproServer(SessionPool(4))
        payload = problem_to_dict(make_problem(53))
        server.handle({"op": "solve", "problem": payload})
        server.handle({"op": "bound", "problem": payload})
        stats_reply = server.handle({"op": "stats"})
        text = render_prometheus(server.pool.stats())
        for op in ("solve", "bound"):
            exposed = f'repro_requests_total{{op="{op}"}} '
            sample = next(
                line for line in text.splitlines() if line.startswith(exposed)
            )
            assert int(sample.split()[-1]) == stats_reply["ops"][op]["count"]
        assert f"repro_solves_total {stats_reply['solves']}" in text

    def test_label_escaping(self):
        pool = SessionPool(2)
        # _op_label bounds real traffic to known labels; render defensively
        # escapes anyway (observe_op is a public method).
        pool.observe_op('we"ird\\op\n', 0.1)
        text = render_prometheus(pool.stats())
        assert 'op="we\\"ird\\\\op\\n"' in text


# --------------------------------------------------------------------------- #
# HTTP hardening
# --------------------------------------------------------------------------- #
@pytest.fixture()
def http_server():
    server = ReproServer(SessionPool(4))
    httpd = make_http_server(server, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield f"http://{host}:{port}", server
    finally:
        httpd.shutdown()
        httpd.server_close()


class TestHttpHardening:
    def test_stats_with_query_string_routes(self, http_server):
        url, _server = http_server
        with urllib.request.urlopen(f"{url}/stats?format=json&probe=1") as rsp:
            assert rsp.status == 200
            assert json.loads(rsp.read())["type"] == "pool_stats"
        with urllib.request.urlopen(f"{url}/?x=1") as rsp:
            assert json.loads(rsp.read())["type"] == "pool_stats"

    def test_unknown_path_is_404(self, http_server):
        url, _server = http_server
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"{url}/nope")
        assert caught.value.code == 404

    def test_metrics_endpoint_scrapes(self, http_server):
        url, server = http_server
        server.handle(
            {"op": "solve", "problem": problem_to_dict(make_problem(61))}
        )
        with urllib.request.urlopen(f"{url}/metrics") as rsp:
            assert rsp.status == 200
            assert rsp.headers["Content-Type"].startswith("text/plain")
            body = rsp.read().decode()
        assert body == render_prometheus(server.pool.stats())
        assert 'repro_requests_total{op="solve"} 1' in body

    def _raw_request(self, url: str, head: str, body: bytes = b"") -> bytes:
        host, port = url[len("http://"):].split(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(head.encode() + body)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)

    def test_negative_content_length_is_400_not_a_hang(self, http_server):
        url, _server = http_server
        raw = self._raw_request(
            url,
            "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: -5\r\n\r\n",
        )
        assert b"400" in raw.split(b"\r\n", 1)[0]
        assert b"negative Content-Length" in raw
        # The worker survived: the endpoint still answers.
        with urllib.request.urlopen(f"{url}/stats") as rsp:
            assert rsp.status == 200

    def test_non_numeric_content_length_is_400(self, http_server):
        url, _server = http_server
        raw = self._raw_request(
            url,
            "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
        )
        assert b"400" in raw.split(b"\r\n", 1)[0]
        assert b"malformed Content-Length" in raw

    def test_missing_content_length_is_411(self, http_server):
        url, _server = http_server
        raw = self._raw_request(url, "POST / HTTP/1.1\r\nHost: x\r\n\r\n")
        assert b"411" in raw.split(b"\r\n", 1)[0]

    def test_oversized_content_length_is_413(self, http_server):
        url, _server = http_server
        raw = self._raw_request(
            url,
            "POST / HTTP/1.1\r\nHost: x\r\n"
            "Content-Length: 99999999999\r\n\r\n",
        )
        assert b"413" in raw.split(b"\r\n", 1)[0]
        assert b"-byte cap" in raw

    def test_disconnect_mid_reply_is_one_log_line(self, capsys):
        class _Boom:
            def write(self, _data):
                raise BrokenPipeError("gone")

        handler = _Handler.__new__(_Handler)
        handler.request_version = "HTTP/1.1"
        handler.requestline = "POST / HTTP/1.1"
        handler.client_address = ("192.0.2.1", 1234)
        handler.wfile = _Boom()
        handler.close_connection = False
        handler._reply({"type": "pool_stats"})  # must not raise
        assert handler.close_connection
        err = capsys.readouterr().err
        assert "disconnected mid-reply" in err
        assert "Traceback" not in err

    def test_server_handle_error_quiets_disconnects(self, http_server, capsys):
        url, server = http_server
        httpd = make_http_server(server, "127.0.0.1", 0)
        try:
            raise ConnectionResetError("peer vanished")
        except ConnectionResetError:
            httpd.handle_error(None, ("192.0.2.7", 9))
        httpd.server_close()
        err = capsys.readouterr().err
        assert "client disconnected" in err
        assert "Traceback" not in err


# --------------------------------------------------------------------------- #
# snapshot restore race
# --------------------------------------------------------------------------- #
class TestRestoreRace:
    def test_vanished_snapshot_is_skipped(self, tmp_path, monkeypatch, capsys):
        pool = SessionPool(4)
        server = ReproServer(pool)
        for seed in (71, 72):
            server.handle(
                {"op": "solve", "problem": problem_to_dict(make_problem(seed))}
            )
        save_pool(pool, tmp_path)
        files = sorted(tmp_path.glob("*.session.json"))
        assert len(files) == 2
        victim = files[0]

        real_stat = Path.stat

        def racing_stat(self, *args, **kwargs):
            if self.name == victim.name:
                # Simulate another process retiring the file between the
                # directory glob and this stat call.
                raise FileNotFoundError(str(self))
            return real_stat(self, *args, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        fresh = SessionPool(4)
        assert restore_pool(fresh, tmp_path) == 1
        assert len(fresh) == 1


# --------------------------------------------------------------------------- #
# the selectors loop server
# --------------------------------------------------------------------------- #
class TestLoopServer:
    def _serve_in_thread(self, loop: LoopServer) -> threading.Thread:
        thread = threading.Thread(target=loop.serve, daemon=True)
        thread.start()
        return thread

    def test_tcp_round_trip_and_pipelined_batch(self):
        payload = problem_to_dict(make_problem(81))
        loop = LoopServer(ReproServer(SessionPool(4)))
        host, port = loop.listen()
        thread = self._serve_in_thread(loop)
        try:
            client = connect(f"tcp://{host}:{port}")
            results = client.batch(
                [
                    {"op": "solve", "problem": payload},
                    {"op": "bound"},
                ]
            )
            assert isinstance(results[0], SolveResult)
            stats = client.stats()
            assert stats.ops["batch"]["count"] == 1
            assert stats.ops["solve"]["count"] == 1
            client.transport.close()
        finally:
            loop.shutdown()
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_two_sockets_one_thread(self):
        loop = LoopServer(ReproServer(SessionPool(4)))
        host, port = loop.listen()
        thread = self._serve_in_thread(loop)
        try:
            first = connect(f"tcp://{host}:{port}")
            second = connect(f"tcp://{host}:{port}")
            assert isinstance(first.stats(), PoolStats)
            assert isinstance(second.stats(), PoolStats)
            # A stats reply is snapshotted before its own observe_op lands,
            # so the third call reports the two requests before it.
            assert second.stats().ops["stats"]["count"] == 2
        finally:
            loop.shutdown()
            thread.join(timeout=10)

    def test_pipe_peer_eof_stops_the_loop(self):
        read_in, write_in = os.pipe()
        read_out, write_out = os.pipe()
        loop = LoopServer(ReproServer(SessionPool(2)))
        loop.add_stream(read_in, write_out)
        thread = self._serve_in_thread(loop)
        os.write(write_in, b'{"op": "stats"}\n')
        with os.fdopen(read_out) as replies:
            assert json.loads(replies.readline())["type"] == "pool_stats"
            os.close(write_in)  # EOF: the loop should wind down on its own
            thread.join(timeout=10)
            assert not thread.is_alive()

    def test_malformed_lines_still_get_replies_in_order(self):
        read_in, write_in = os.pipe()
        read_out, write_out = os.pipe()
        loop = LoopServer(ReproServer(SessionPool(2)))
        loop.add_stream(read_in, write_out)
        thread = self._serve_in_thread(loop)
        os.write(write_in, b'not json\n\n{"op": "stats"}\n\xff\xfe\n')
        os.close(write_in)
        with os.fdopen(read_out) as replies:
            lines = [json.loads(line) for line in replies]
        thread.join(timeout=10)
        assert lines[0]["error"]["code"] == "bad_request"
        assert lines[1]["type"] == "pool_stats"
        assert "not UTF-8" in lines[2]["error"]["message"]
        assert len(lines) == 3  # the blank line is ignored, order holds

    def test_slow_client_is_dropped_not_waited_on(self, capsys):
        read_in, write_in = os.pipe()
        read_out, write_out = os.pipe()
        loop = LoopServer(ReproServer(SessionPool(2)), max_buffer=8192)
        loop.add_stream(read_in, write_out)
        thread = self._serve_in_thread(loop)
        # Never read from read_out: once the pipe and the 8 KiB buffer cap
        # fill, the loop must evict this peer instead of blocking.
        request = b'{"op": "stats"}\n'
        for _ in range(2000):
            try:
                os.write(write_in, request)
            except BrokenPipeError:
                break  # loop already dropped us and closed the pipe
        os.close(write_in)
        thread.join(timeout=30)
        assert not thread.is_alive()
        os.close(read_out)
        assert "slow client" in capsys.readouterr().err

    def test_regular_file_stdin_raises_permission_error(self, tmp_path):
        import selectors

        if not isinstance(
            selectors.DefaultSelector(), selectors.EpollSelector
        ):  # pragma: no cover - platform-specific
            pytest.skip("only epoll rejects regular files")
        path = tmp_path / "requests.jsonl"
        path.write_text('{"op": "stats"}\n')
        loop = LoopServer(ReproServer(SessionPool(2)))
        fd = os.open(path, os.O_RDONLY)
        out = os.open(tmp_path / "replies.jsonl", os.O_WRONLY | os.O_CREAT)
        try:
            with pytest.raises(PermissionError):
                loop.add_stream(fd, out)
        finally:
            os.close(fd)
            os.close(out)


# --------------------------------------------------------------------------- #
# the load harness
# --------------------------------------------------------------------------- #
class TestLoadgen:
    CONFIG = dict(tenants=2, size=15, horizon=0.4, rate=30.0, seed=5)

    def test_schedule_is_deterministic(self):
        config = LoadgenConfig(**self.CONFIG)
        first = build_schedule(config)
        second = build_schedule(config)
        assert (first[0] == second[0]).all()
        assert (first[1] == second[1]).all()
        assert len(first[2]) == config.tenants

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadgenConfig(tenants=0)
        with pytest.raises(ValueError):
            LoadgenConfig(rate=0.0)
        with pytest.raises(ValueError):
            LoadgenConfig(batch=0)
        with pytest.raises(ValueError):
            LoadgenConfig(ops=("solve", "teleport"))

    @pytest.mark.parametrize("batch", [1, 8])
    def test_run_serves_the_whole_schedule(self, batch):
        config = LoadgenConfig(batch=batch, **self.CONFIG)
        report = run_loadtest(ReproServer(SessionPool(4)), config)
        assert report.served == report.scheduled > 0
        assert report.errors == 0
        assert report.requests_per_sec > 0
        assert set(report.latency) == {"p50", "p95", "p99", "max"}
        assert report.latency["p50"] <= report.latency["p99"]
        assert report.op_counts["solve"] + report.op_counts["bound"] == (
            report.served
        )
        if batch > 1:
            assert report.envelopes <= report.served
        rebuilt = result_from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert "req/s" in report.describe()

    def test_update_ops_drive_epoch_trajectories(self):
        config = LoadgenConfig(
            ops=("solve", "update"), batch=4, **self.CONFIG
        )
        server = ReproServer(SessionPool(4))
        report = run_loadtest(server, config)
        assert report.errors == 0
        assert server.pool.stats().epochs == report.op_counts.get("update", 0)
