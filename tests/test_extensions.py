"""Tests of the extension packages: QoS, bandwidth, multi-object, objectives,
analysis and simulation."""

from __future__ import annotations

import math

import pytest

from repro.analysis import dominance_holds, policy_costs, policy_gap, tree_statistics
from repro.bandwidth import bandwidth_feasibility_report, link_utilisation, saturated_links
from repro.core.builder import TreeBuilder
from repro.core.constraints import ConstraintSet, QoSMode
from repro.core.policies import Policy
from repro.core.problem import replica_cost_problem, replica_counting_problem
from repro.multiobject import (
    MultiObjectProblem,
    ObjectType,
    multi_object_exact,
    multi_object_lower_bound,
    sequential_greedy,
    validate_multi_object_solution,
)
from repro.objectives import CombinedObjective, read_cost, replica_spanning_links, write_cost
from repro.qos import (
    qos_feasibility_report,
    qos_statistics,
    reachable_servers,
    tightest_feasible_qos,
)
from repro.simulation import simulate_solution
from repro.workloads import generate_tree, reference_trees
from repro.api import solve
from repro.core.feasibility import multiple_assignment


# --------------------------------------------------------------------------- #
# QoS
# --------------------------------------------------------------------------- #
class TestQoS:
    def test_reachable_servers_uses_client_bound(self, qos_tree):
        assert reachable_servers(qos_tree, "near") == ("leaf",)
        assert reachable_servers(qos_tree, "far") == ("leaf", "mid", "root")

    def test_reachable_servers_override_bound(self, qos_tree):
        assert reachable_servers(qos_tree, "near", bound=2) == ("leaf", "mid")

    def test_reachable_servers_latency_mode(self, qos_tree):
        servers = reachable_servers(qos_tree, "far", bound=4.0, mode=QoSMode.LATENCY)
        assert servers == ("leaf", "mid")  # 1.0 and 4.0; root is at 6.0

    def test_tightest_feasible_qos(self, qos_tree):
        assert tightest_feasible_qos(qos_tree, "near") == 1
        assert tightest_feasible_qos(qos_tree, "near", mode=QoSMode.LATENCY) == 1.0

    def test_feasibility_report_flags_unreachable(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=10)
            .add_node("mid", capacity=10, parent="root", comm_time=5.0)
            .add_client("c", requests=1, parent="mid", qos=0.5, comm_time=2.0)
            .build()
        )
        problem = replica_cost_problem(tree, constraints=ConstraintSet.qos_latency())
        report = qos_feasibility_report(problem)
        assert not report.feasible and report.unreachable_clients == ["c"]

    def test_feasibility_report_without_qos_is_trivially_feasible(self, small_problem):
        assert qos_feasibility_report(small_problem).feasible

    def test_tight_clients_detected(self, qos_tree):
        problem = replica_cost_problem(qos_tree, constraints=ConstraintSet.qos_distance())
        report = qos_feasibility_report(problem)
        assert report.feasible
        assert "near" in report.tight_clients and "top" in report.tight_clients

    def test_qos_statistics(self, qos_tree):
        problem = replica_cost_problem(qos_tree, constraints=ConstraintSet.qos_distance())
        solution = multiple_assignment(problem, ["leaf", "mid", "root"])
        stats = qos_statistics(problem, solution)
        assert stats["served_requests"] == pytest.approx(15)
        assert stats["worst_slack"] >= 0
        assert stats["max_metric"] >= stats["mean_metric"]


# --------------------------------------------------------------------------- #
# bandwidth
# --------------------------------------------------------------------------- #
class TestBandwidth:
    def make_tree(self, bandwidth):
        return (
            TreeBuilder()
            .add_node("root", capacity=50)
            .add_node("mid", capacity=5, parent="root", bandwidth=bandwidth)
            .add_client("c", requests=10, parent="mid")
            .build()
        )

    def test_link_utilisation(self):
        tree = self.make_tree(bandwidth=20)
        problem = replica_cost_problem(tree)
        solution = multiple_assignment(problem, ["mid", "root"])
        stats = link_utilisation(tree, solution)
        assert stats[("mid", "root")]["flow"] == pytest.approx(5)
        assert stats[("mid", "root")]["utilisation"] == pytest.approx(0.25)

    def test_saturated_links(self):
        tree = self.make_tree(bandwidth=5)
        problem = replica_cost_problem(tree)
        solution = multiple_assignment(problem, ["mid", "root"])
        assert ("mid", "root") in saturated_links(tree, solution, threshold=0.9)

    def test_feasibility_report_detects_starved_subtree(self):
        tree = self.make_tree(bandwidth=2)  # 10 requests, 5 local capacity, 2 uplink
        problem = replica_cost_problem(
            tree, constraints=ConstraintSet(enforce_bandwidth=True)
        )
        report = bandwidth_feasibility_report(problem)
        assert not report.feasible and ("mid", "root") in report.overloaded_links

    def test_feasibility_report_ok_when_unenforced(self):
        tree = self.make_tree(bandwidth=2)
        assert bandwidth_feasibility_report(replica_cost_problem(tree)).feasible


# --------------------------------------------------------------------------- #
# multi-object
# --------------------------------------------------------------------------- #
class TestMultiObject:
    def make_problem(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=20)
            .add_node("a", capacity=10, parent="root")
            .add_client("c1", requests=0, parent="a")
            .add_client("c2", requests=0, parent="a")
            .build()
        )
        objects = [ObjectType("video", size=2.0), ObjectType("meta", size=0.5)]
        requests = {
            ("c1", "video"): 6,
            ("c1", "meta"): 2,
            ("c2", "video"): 4,
            ("c2", "meta"): 3,
        }
        return MultiObjectProblem(tree, objects, requests)

    def test_model_accessors(self):
        problem = self.make_problem()
        assert problem.request("c1", "video") == 6
        assert problem.client_total("c1") == 8
        assert problem.object_total("video") == 10
        assert problem.storage_cost("a", "video") == 20  # size 2 * cost 10
        assert 0 < problem.load_factor() <= 1
        assert "2 objects" in problem.describe()

    def test_model_validation_errors(self):
        tree = self.make_problem().tree
        with pytest.raises(Exception):
            MultiObjectProblem(tree, [], {})
        with pytest.raises(Exception):
            MultiObjectProblem(tree, [ObjectType("o")], {("ghost", "o"): 1})
        with pytest.raises(Exception):
            MultiObjectProblem(tree, [ObjectType("o")], {("c1", "other"): 1})

    def test_sequential_greedy_is_valid(self):
        problem = self.make_problem()
        solution = sequential_greedy(problem)
        assert validate_multi_object_solution(problem, solution) == []
        assert solution.replica_count() >= 2  # at least one replica per object

    def test_exact_never_costs_more_than_greedy(self):
        problem = self.make_problem()
        greedy = sequential_greedy(problem)
        exact = multi_object_exact(problem)
        assert validate_multi_object_solution(problem, exact) == []
        assert exact.cost(problem) <= greedy.cost(problem) + 1e-6

    def test_lower_bound_below_exact(self):
        problem = self.make_problem()
        bound = multi_object_lower_bound(problem)
        assert bound <= multi_object_exact(problem).cost(problem) + 1e-6

    def test_solution_helpers(self):
        problem = self.make_problem()
        solution = sequential_greedy(problem)
        node = next(iter(solution.replicas))[0]
        assert solution.server_load(node) > 0
        assert solution.objects_on(node)

    def test_infeasible_object_raises(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=3)
            .add_client("c", requests=0, parent="root")
            .build()
        )
        problem = MultiObjectProblem(
            tree, [ObjectType("big")], {("c", "big"): 10}
        )
        from repro.core.exceptions import InfeasibleError

        with pytest.raises(InfeasibleError):
            sequential_greedy(problem)
        assert math.isinf(multi_object_lower_bound(problem))


# --------------------------------------------------------------------------- #
# objectives
# --------------------------------------------------------------------------- #
class TestObjectives:
    def test_read_cost_counts_latency_per_request(self, chain_tree):
        problem = replica_cost_problem(chain_tree)
        solution = multiple_assignment(problem, ["low", "mid"])
        # 4 requests at distance 1 (latency 1) + 2 requests at distance 2.
        assert read_cost(chain_tree, solution) == pytest.approx(4 * 1 + 2 * 2)

    def test_spanning_links_of_chain(self, chain_tree):
        links = replica_spanning_links(chain_tree, ["low", "top"])
        assert {link.key for link in links} == {("low", "mid"), ("mid", "top")}

    def test_spanning_links_empty_for_single_replica(self, chain_tree):
        assert replica_spanning_links(chain_tree, ["mid"]) == ()

    def test_spanning_links_branching(self, hetero_tree):
        links = replica_spanning_links(hetero_tree, ["a", "b"])
        assert {link.key for link in links} == {("a", "root"), ("b", "root")}

    def test_write_cost_scales_with_update_rate(self, chain_tree):
        base = write_cost(chain_tree, ["low", "top"])
        assert write_cost(chain_tree, ["low", "top"], updates_per_time_unit=3) == pytest.approx(3 * base)

    def test_combined_objective_components_and_value(self, chain_tree):
        problem = replica_cost_problem(chain_tree)
        solution = multiple_assignment(problem, ["low", "mid"])
        objective = CombinedObjective(alpha=1.0, beta=2.0, gamma=0.5)
        parts = objective.components(problem, solution)
        expected = parts["storage"] + 2.0 * parts["read"] + 0.5 * parts["write"]
        assert objective.value(problem, solution) == pytest.approx(expected)

    def test_combined_objective_ranks_solutions(self, chain_tree):
        problem = replica_cost_problem(chain_tree)
        low = multiple_assignment(problem, ["low", "mid"])
        high = multiple_assignment(problem, ["mid", "top"])
        ranking = CombinedObjective(alpha=0.0, beta=1.0).rank(
            problem, [("low", low), ("high", high), ("failed", None)]
        )
        assert ranking[0][0] == "low"  # serving lower is cheaper to read
        assert len(ranking) == 2


# --------------------------------------------------------------------------- #
# analysis and simulation
# --------------------------------------------------------------------------- #
class TestAnalysis:
    def test_tree_statistics(self, hetero_tree):
        stats = tree_statistics(hetero_tree)
        assert stats.internal_nodes == 3 and stats.clients == 3
        assert stats.height == 2
        assert not stats.homogeneous
        assert stats.as_dict()["clients"] == 3

    def test_policy_costs_and_dominance_exact(self):
        problem = replica_counting_problem(reference_trees.figure3_tree(2))
        costs = policy_costs(problem, exact=True)
        assert dominance_holds(costs)
        assert costs[Policy.MULTIPLE] == 3

    def test_policy_gap(self):
        problem = replica_counting_problem(reference_trees.figure3_tree(2))
        costs = policy_costs(problem, exact=True)
        gap = policy_gap(costs, Policy.MULTIPLE, Policy.UPWARDS)
        assert gap == pytest.approx(4 / 3)

    def test_policy_gap_none_when_infeasible(self):
        costs = {Policy.MULTIPLE: 2.0, Policy.UPWARDS: math.inf, Policy.CLOSEST: math.inf}
        assert policy_gap(costs, Policy.MULTIPLE, Policy.UPWARDS) is None
        assert dominance_holds(costs)


class TestSimulation:
    def test_flow_simulation_consistency(self):
        tree = generate_tree(size=30, target_load=0.4, seed=77)
        problem = replica_counting_problem(tree)
        solution = solve(problem, policy="multiple")
        sim = simulate_solution(problem, solution)
        assert sum(sim.server_load.values()) == pytest.approx(tree.total_requests())
        assert all(0 <= u <= 1 + 1e-9 for u in sim.server_utilisation.values())
        assert sim.max_latency >= sim.mean_latency >= 0
        assert "replicas" in sim.summary()

    def test_latency_zero_when_served_by_parent(self, small_tree):
        problem = replica_cost_problem(small_tree)
        solution = multiple_assignment(problem, ["n1", "root"])
        sim = simulate_solution(problem, solution)
        assert sim.client_latency["c1"] == pytest.approx(1.0)

    def test_closest_latency_not_higher_than_multiple(self):
        # On a tree where both are feasible, Closest serves at least as close.
        tree = generate_tree(size=30, target_load=0.15, seed=88)
        problem = replica_counting_problem(tree)
        closest = solve(problem, policy="closest")
        multiple = solve(problem, policy="multiple")
        closest_sim = simulate_solution(problem, closest)
        multiple_sim = simulate_solution(problem, multiple)
        assert closest_sim.mean_latency <= multiple_sim.mean_latency + 1e-9

    def test_hottest_server_reported(self, small_tree):
        problem = replica_cost_problem(small_tree)
        solution = multiple_assignment(problem, ["n1", "root"])
        node, utilisation = simulate_solution(problem, solution).hottest_server()
        assert node == "n1" and utilisation == pytest.approx(1.0)
