"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math

import pytest

from repro.core.builder import TreeBuilder
from repro.core.constraints import ConstraintSet
from repro.core.problem import (
    ProblemKind,
    ReplicaPlacementProblem,
    replica_cost_problem,
    replica_counting_problem,
)
from repro.core.validation import validate_solution
from repro.workloads.generator import GeneratorConfig, TreeGenerator


# --------------------------------------------------------------------------- #
# hand-built trees
# --------------------------------------------------------------------------- #
@pytest.fixture
def small_tree():
    """root(W=10) -- n1(W=10) -- {c1: 7, c2: 3}; one extra client at the root."""
    return (
        TreeBuilder()
        .add_node("root", capacity=10)
        .add_node("n1", capacity=10, parent="root")
        .add_client("c1", requests=7, parent="n1")
        .add_client("c2", requests=3, parent="n1")
        .add_client("c3", requests=2, parent="root")
        .build()
    )


@pytest.fixture
def chain_tree():
    """A three-node chain with one client at the bottom."""
    return (
        TreeBuilder()
        .add_node("top", capacity=4)
        .add_node("mid", capacity=4, parent="top")
        .add_node("low", capacity=4, parent="mid")
        .add_client("c", requests=6, parent="low")
        .build()
    )


@pytest.fixture
def hetero_tree():
    """Heterogeneous capacities: the big server sits at the root."""
    return (
        TreeBuilder()
        .add_node("root", capacity=100, storage_cost=100)
        .add_node("a", capacity=10, parent="root")
        .add_node("b", capacity=20, parent="root")
        .add_client("ca1", requests=8, parent="a")
        .add_client("ca2", requests=6, parent="a")
        .add_client("cb1", requests=15, parent="b")
        .build()
    )


@pytest.fixture
def qos_tree():
    """Tree with finite QoS bounds (in hops) on every client."""
    return (
        TreeBuilder()
        .add_node("root", capacity=50)
        .add_node("mid", capacity=10, parent="root", comm_time=2.0)
        .add_node("leaf", capacity=10, parent="mid", comm_time=3.0)
        .add_client("near", requests=5, parent="leaf", qos=1, comm_time=1.0)
        .add_client("far", requests=5, parent="leaf", qos=3, comm_time=1.0)
        .add_client("top", requests=5, parent="root", qos=1, comm_time=1.0)
        .build()
    )


@pytest.fixture
def small_problem(small_tree):
    return replica_cost_problem(small_tree)


@pytest.fixture
def small_counting_problem(small_tree):
    return replica_counting_problem(small_tree)


@pytest.fixture
def hetero_problem(hetero_tree):
    return replica_cost_problem(hetero_tree)


# --------------------------------------------------------------------------- #
# random problems
# --------------------------------------------------------------------------- #
@pytest.fixture
def random_homogeneous_problem():
    tree = TreeGenerator(17).generate(
        GeneratorConfig(size=40, target_load=0.4, homogeneous=True)
    )
    return replica_counting_problem(tree)


@pytest.fixture
def random_heterogeneous_problem():
    tree = TreeGenerator(23).generate(
        GeneratorConfig(size=40, target_load=0.4, homogeneous=False)
    )
    return replica_cost_problem(tree)


def make_random_problem(seed: int, *, size=40, load=0.4, homogeneous=True, **kwargs):
    """Helper (not a fixture) used by parametrised tests."""
    tree = TreeGenerator(seed).generate(
        GeneratorConfig(size=size, target_load=load, homogeneous=homogeneous, **kwargs)
    )
    kind = ProblemKind.REPLICA_COUNTING if homogeneous else ProblemKind.REPLICA_COST
    return ReplicaPlacementProblem(tree=tree, kind=kind)


# --------------------------------------------------------------------------- #
# assertion helpers
# --------------------------------------------------------------------------- #
def assert_valid(problem, solution, policy=None):
    """Assert that a solution passes full validation."""
    report = validate_solution(problem, solution, policy=policy)
    assert report.valid, "unexpected violations:\n" + "\n".join(report.violations)
    return report
