"""Tests of the IPFP fractional-bound subsystem (``repro.lp.ipfp``).

The load-bearing property is the sandwich ``trivial <= ipfp <= mixed LP
<= heuristic cost``, pinned across a kind x constraint matrix, plus the
retarget contract: a rate-only ``with_requests`` fork reproduces the
cold-run value bit for bit (the bounder ladder depends on it).
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.incremental import IncrementalBounder
from repro.core.builder import TreeBuilder
from repro.core.constraints import ConstraintSet
from repro.core.costs import trivial_lower_bound
from repro.core.policies import Policy
from repro.core.problem import (
    ProblemKind,
    ReplicaPlacementProblem,
    replica_cost_problem,
)
from repro.lp import (
    IPFPConfig,
    IPFPProgram,
    ipfp_bound,
    ipfp_defaults,
    ipfp_program,
)
from repro.lp.bounds import (
    LowerBoundResult,
    bound_for_program,
    bound_program,
    lp_lower_bound,
)
from repro.session import PlacementSession
from repro.workloads.generator import GeneratorConfig, TreeGenerator
from tests.conftest import make_random_problem


def _matrix_problem(label: str, seed: int) -> ReplicaPlacementProblem:
    """One instance per cell of the sandwich matrix."""
    if label == "counting":
        return make_random_problem(seed, homogeneous=True)
    if label == "cost":
        return make_random_problem(seed, homogeneous=False)
    if label == "hetero":
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(size=40, target_load=0.5, homogeneous=False)
        )
        return ReplicaPlacementProblem(tree=tree, kind=ProblemKind.GENERAL)
    if label == "qos":
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(
                size=40, target_load=0.4, homogeneous=False, qos_hops=(2, 4)
            )
        )
        return replica_cost_problem(
            tree, constraints=ConstraintSet.qos_distance()
        )
    if label == "bandwidth":
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(
                size=40, target_load=0.4, homogeneous=False, link_bandwidth=60.0
            )
        )
        return replica_cost_problem(
            tree, constraints=ConstraintSet(enforce_bandwidth=True)
        )
    raise AssertionError(label)


class TestSandwich:
    @pytest.mark.parametrize(
        "label", ["counting", "cost", "hetero", "qos", "bandwidth"]
    )
    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_trivial_le_ipfp_le_lp_le_cost(self, label, seed):
        problem = _matrix_problem(label, seed)
        trivial = trivial_lower_bound(problem)
        ip = ipfp_bound(problem)
        lp = lp_lower_bound(problem)
        assert ip.method == "ipfp"
        if not ip.feasible:
            # A sound certificate implies the exact relaxation fails too.
            assert not lp.feasible
            return
        assert trivial <= ip.value + 1e-9
        if lp.feasible:
            assert ip.value <= lp.value + 1e-9
        for policy in Policy.ordered():
            session = PlacementSession(problem)
            try:
                placed = session.solve(policy=policy)
            except Exception:
                continue
            assert ip.value <= placed.cost + 1e-9

    def test_integral_costs_tighten_to_integer(self):
        problem = make_random_problem(3, homogeneous=True)
        ip = ipfp_bound(problem)
        assert ip.feasible
        assert ip.value == int(ip.value)


class TestRetarget:
    def test_rate_only_retarget_equals_cold_run(self):
        problem = make_random_problem(9, homogeneous=False)
        program = ipfp_program(problem)
        cold_base = program.solve()

        surged = problem.tree.with_requests(
            {c: problem.tree.client(c).requests + 3.0 for c in problem.tree.client_ids}
        )
        next_problem = ReplicaPlacementProblem(tree=surged, kind=problem.kind)
        warm = program.with_requests(next_problem).solve()
        cold = ipfp_bound(next_problem)
        assert warm.value == cold.value
        assert warm.objective == cold.objective
        # ...and the original program still answers for the original epoch.
        assert program.solve().value == cold_base.value

    def test_structural_change_refuses_retarget(self):
        problem = make_random_problem(9, homogeneous=True)
        program = ipfp_program(problem)
        bigger = make_random_problem(10, size=50, homogeneous=True)
        with pytest.raises(ValueError):
            program.with_requests(bigger)

    def test_bounder_ladder_with_ipfp(self):
        base = make_random_problem(4, homogeneous=True)
        bounder = IncrementalBounder(method="ipfp")
        first, stats = bounder.bound(base)
        assert stats.strategy == "built"
        again, stats = bounder.bound(base)
        assert stats.strategy == "reused"
        assert again.value == first.value
        surged = ReplicaPlacementProblem(
            tree=base.tree.with_requests({base.tree.client_ids[0]: 1.0}),
            kind=base.kind,
        )
        patched, stats = bounder.bound(surged)
        assert stats.strategy == "patched"
        assert patched.value == ipfp_bound(surged).value

    def test_bound_program_dispatch(self):
        problem = make_random_problem(6, homogeneous=True)
        program = bound_program(problem, method="ipfp")
        assert isinstance(program, IPFPProgram)
        result = bound_for_program(program, method="ipfp")
        assert result.method == "ipfp"
        assert result.value == ipfp_bound(problem).value


class TestCertificates:
    def test_zero_capacity_servers(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=0, storage_cost=1)
            .add_node("mid", capacity=0, storage_cost=1, parent="root")
            .add_client("c", requests=5, parent="mid")
            .build()
        )
        problem = ReplicaPlacementProblem(tree=tree, kind=ProblemKind.GENERAL)
        result = ipfp_bound(problem)
        assert not result.feasible
        assert math.isinf(result.value)
        assert result.certificate is not None

    def test_uplink_bandwidth_overflow(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=50)
            .add_node("mid", capacity=50, parent="root")
            .add_client("c", requests=10, parent="mid", bandwidth=4.0)
            .build()
        )
        problem = replica_cost_problem(
            tree, constraints=ConstraintSet(enforce_bandwidth=True)
        )
        result = ipfp_bound(problem)
        assert not result.feasible
        assert "bandwidth" in result.certificate
        # Without bandwidth enforcement the same instance is fine.
        relaxed = replica_cost_problem(tree)
        assert ipfp_bound(relaxed).feasible

    def test_subtree_capacity_shortfall(self):
        # QoS pins both clients inside the 'mid' subtree (1 hop), whose
        # capacity cannot carry them: Hall's condition fails.
        tree = (
            TreeBuilder()
            .add_node("root", capacity=100)
            .add_node("mid", capacity=4, parent="root")
            .add_client("c1", requests=5, parent="mid", qos=1)
            .add_client("c2", requests=5, parent="mid", qos=1)
            .build()
        )
        problem = replica_cost_problem(
            tree, constraints=ConstraintSet.qos_distance()
        )
        result = ipfp_bound(problem)
        assert not result.feasible
        assert result.certificate is not None
        assert not lp_lower_bound(problem).feasible

    def test_certificate_round_trips(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=0)
            .add_client("c", requests=5, parent="root")
            .build()
        )
        problem = ReplicaPlacementProblem(tree=tree, kind=ProblemKind.GENERAL)
        result = ipfp_bound(problem)
        rebuilt = LowerBoundResult.from_dict(result.to_dict())
        assert rebuilt.certificate == result.certificate
        assert not rebuilt.feasible
        # Feasible results omit the key entirely (stable historical payloads).
        ok = ipfp_bound(make_random_problem(1, homogeneous=True))
        assert "certificate" not in ok.to_dict()
        assert LowerBoundResult.from_dict(ok.to_dict()).certificate is None


class TestSessionAndServing:
    def test_session_bound_ipfp_caches(self):
        problem = make_random_problem(2, homogeneous=True)
        session = PlacementSession(problem)
        first = session.bound(method="ipfp")
        assert first.result.method == "ipfp"
        second = session.bound(method="ipfp")
        assert second.result.value == first.result.value
        assert first.result.value == ipfp_bound(problem).value

    def test_serving_bound_op_ipfp(self):
        from repro import connect
        from repro.serving.server import ReproServer

        problem = make_random_problem(2, homogeneous=True)
        client = connect(ReproServer(capacity=2))
        session = client.open(problem)
        remote = session.bound(method="ipfp")
        assert remote.value == ipfp_bound(problem).value

    def test_bound_sequence_ipfp(self):
        from repro.api import bound_sequence
        from repro.workloads.dynamic import rate_churn

        base = make_random_problem(7, homogeneous=True)
        epochs = rate_churn(base, 5, churn=0.2, quiet_probability=0.2, seed=7)
        result = bound_sequence(epochs, method="ipfp")
        assert len(result.values) == 5
        for epoch, value in zip(epochs, result.values):
            assert value == ipfp_bound(epoch).value


class TestConfig:
    def test_defaults_surface(self):
        defaults = ipfp_defaults()
        assert set(defaults) == {
            "max_iterations", "tolerance", "stall_iterations", "step"
        }

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"tolerance": 0.0},
            {"stall_iterations": 0},
            {"step": -1.0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            IPFPConfig(**kwargs)

    def test_describe(self):
        program = ipfp_program(make_random_problem(1, homogeneous=True))
        assert "ipfp" in program.describe()
