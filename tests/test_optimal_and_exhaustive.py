"""Tests of the optimal Multiple/homogeneous algorithm and the exhaustive baseline."""

from __future__ import annotations

import math

import pytest

from repro.algorithms.exhaustive import ExhaustiveSearch, optimal_cost, optimal_solution
from repro.algorithms.multiple_homogeneous import (
    MultipleHomogeneousOptimal,
    optimal_multiple_homogeneous_placement,
)
from repro.core.builder import TreeBuilder
from repro.core.costs import request_lower_bound
from repro.core.exceptions import InfeasibleError, TreeStructureError
from repro.core.policies import Policy
from repro.core.problem import replica_cost_problem, replica_counting_problem
from repro.workloads import reference_trees
from tests.conftest import assert_valid, make_random_problem


class TestOptimalMultipleHomogeneous:
    def test_hand_built_example_with_both_passes(self):
        """A Figure 6-style instance (W = 10) mixing saturated and pass-2 replicas."""
        builder = TreeBuilder().add_node("n1", capacity=10)
        builder.add_node("n2", capacity=10, parent="n1")
        builder.add_node("n3", capacity=10, parent="n1")
        builder.add_node("n4", capacity=10, parent="n1")
        builder.add_client("c_n2_a", requests=2, parent="n2")
        builder.add_client("c_n2_b", requests=2, parent="n2")
        builder.add_node("n5", capacity=10, parent="n3")
        builder.add_client("c_n3", requests=1, parent="n3")
        builder.add_node("n6", capacity=10, parent="n5")
        builder.add_client("c_n5", requests=9, parent="n5")
        builder.add_client("c_n6_a", requests=12, parent="n6")
        builder.add_client("c_n6_b", requests=1, parent="n6")
        builder.add_node("n7", capacity=10, parent="n4")
        builder.add_node("n8", capacity=10, parent="n4")
        builder.add_client("c_n7", requests=7, parent="n7")
        builder.add_client("c_n8_a", requests=2, parent="n8")
        builder.add_client("c_n8_b", requests=7, parent="n8")
        tree = builder.build()
        problem = replica_counting_problem(tree)
        solution = MultipleHomogeneousOptimal().solve(problem)
        # Total requests = 43, W = 10 -> the lower bound of 5 replicas is
        # reached (4 saturated nodes from pass 1 plus one pass-2 replica).
        assert solution.replica_count() == 5
        assert solution.replica_count() == request_lower_bound(tree)
        assert_valid(problem, solution)

    def test_matches_exhaustive_on_small_random_instances(self):
        for seed in range(6):
            problem = make_random_problem(seed + 100, size=16, load=0.5)
            greedy = MultipleHomogeneousOptimal().try_solve(problem)
            try:
                brute = optimal_cost(problem, Policy.MULTIPLE)
            except InfeasibleError:
                brute = math.inf
            greedy_cost = greedy.cost(problem) if greedy is not None else math.inf
            assert greedy_cost == pytest.approx(brute)

    def test_matches_ilp_on_small_random_instances(self):
        from repro.lp.exact import exact_cost

        for seed in (3, 7, 11):
            problem = make_random_problem(seed, size=18, load=0.4)
            greedy = MultipleHomogeneousOptimal().solve(problem)
            assert greedy.cost(problem) == pytest.approx(
                exact_cost(problem, Policy.MULTIPLE)
            )

    def test_zero_load_places_no_replica(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=10)
            .add_client("c", requests=0, parent="r")
            .build()
        )
        placement = optimal_multiple_homogeneous_placement(
            replica_counting_problem(tree)
        )
        assert placement == set()

    def test_shortcut_adds_root_when_residue_fits(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=10)
            .add_node("a", capacity=10, parent="root")
            .add_client("c", requests=4, parent="a")
            .build()
        )
        placement = optimal_multiple_homogeneous_placement(
            replica_counting_problem(tree)
        )
        assert placement == {"root"}

    def test_infeasible_instance_raises(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=1)
            .add_client("c", requests=5, parent="r")
            .build()
        )
        with pytest.raises(InfeasibleError):
            optimal_multiple_homogeneous_placement(replica_counting_problem(tree))

    def test_heterogeneous_platform_rejected(self, hetero_problem):
        with pytest.raises(TreeStructureError):
            optimal_multiple_homogeneous_placement(hetero_problem)

    def test_never_below_request_lower_bound(self):
        for seed in range(5):
            problem = make_random_problem(seed + 40, size=50, load=0.5)
            solution = MultipleHomogeneousOptimal().try_solve(problem)
            if solution is None:
                continue
            assert solution.replica_count() >= request_lower_bound(problem.tree)

    def test_figure3_needs_n_plus_one_replicas(self):
        n = 4
        problem = replica_counting_problem(reference_trees.figure3_tree(n))
        solution = MultipleHomogeneousOptimal().solve(problem)
        assert solution.replica_count() == n + 1

    def test_pass2_used_when_saturated_nodes_insufficient(self, chain_tree):
        # chain of capacity 4 with a single 6-request client: pass 1 saturates
        # "low", pass 2 must add a second (non exhausted) replica above it.
        problem = replica_cost_problem(chain_tree)
        solution = MultipleHomogeneousOptimal().solve(problem)
        assert solution.replica_count() == 2


class TestExhaustive:
    def test_orders_by_cost_and_returns_cheapest(self, hetero_problem):
        solution = optimal_solution(hetero_problem, Policy.MULTIPLE)
        # The a-subtree issues 14 > 10 requests, so {a, b} is infeasible and
        # the cheapest feasible cover is the root alone (cost 100, instead of
        # e.g. {b, root} at 120).
        assert solution.cost(hetero_problem) == 100
        assert set(solution.placement) == {"root"}

    def test_closest_may_cost_more_than_multiple(self):
        problem = replica_counting_problem(reference_trees.figure3_tree(2))
        multiple = optimal_cost(problem, Policy.MULTIPLE)
        closest = optimal_cost(problem, Policy.CLOSEST)
        assert multiple <= closest

    def test_infeasible_raises(self):
        problem = replica_counting_problem(reference_trees.figure1_tree("c"))
        with pytest.raises(InfeasibleError):
            optimal_solution(problem, Policy.UPWARDS)

    def test_node_limit_guard(self):
        problem = make_random_problem(1, size=80, load=0.3)
        with pytest.raises(ValueError):
            optimal_solution(problem, Policy.MULTIPLE, node_limit=10)

    def test_heuristic_interface_wrapper(self, small_counting_problem):
        heuristic = ExhaustiveSearch(policy=Policy.MULTIPLE)
        solution = heuristic.solve(small_counting_problem)
        assert solution.replica_count() == 2
        assert solution.policy is Policy.MULTIPLE

    def test_upwards_exhaustive_uses_exact_packing(self):
        problem = replica_counting_problem(reference_trees.figure1_tree("b"))
        solution = optimal_solution(problem, Policy.UPWARDS)
        assert solution.replica_count() == 2
