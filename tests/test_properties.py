"""Property-based tests (hypothesis) on the core invariants.

These exercise the data structures and algorithms on randomly drawn trees,
checking the structural invariants the rest of the package relies on:

* generated trees are well-formed (sizes, loads, reachability);
* every heuristic either fails or produces a solution that passes full
  validation under its own policy;
* policy dominance: a valid Closest solution is valid for Upwards, a valid
  Upwards solution is valid for Multiple;
* the LP lower bound never exceeds the cost of any valid solution;
* the optimal Multiple/homogeneous algorithm never beats the
  ``ceil(sum r / W)`` bound and never loses to MultipleGreedy;
* tree serialization round-trips.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms import MultipleGreedy, MultipleHomogeneousOptimal, get_heuristic
from repro.core.costs import request_lower_bound
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.serialization import tree_from_dict, tree_to_dict
from repro.core.validation import validate_solution
from repro.workloads.generator import GeneratorConfig, TreeGenerator

SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

tree_params = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "size": st.integers(min_value=10, max_value=60),
        "load": st.floats(min_value=0.1, max_value=0.8),
        "homogeneous": st.booleans(),
    }
)


def build_problem(params) -> ReplicaPlacementProblem:
    tree = TreeGenerator(params["seed"]).generate(
        GeneratorConfig(
            size=params["size"],
            target_load=round(params["load"], 2),
            homogeneous=params["homogeneous"],
        )
    )
    kind = (
        ProblemKind.REPLICA_COUNTING
        if params["homogeneous"]
        else ProblemKind.REPLICA_COST
    )
    return ReplicaPlacementProblem(tree=tree, kind=kind)


class TestGeneratedTreeInvariants:
    @given(params=tree_params)
    @settings(**SETTINGS)
    def test_tree_is_well_formed(self, params):
        problem = build_problem(params)
        tree = problem.tree
        assert tree.size == params["size"]
        assert abs(tree.load_factor() - round(params["load"], 2)) < 0.05
        # every element reaches the root
        for element in tree.client_ids + tree.node_ids:
            chain = tree.ancestors(element)
            assert element == tree.root or chain[-1] == tree.root

    @given(params=tree_params)
    @settings(**SETTINGS)
    def test_subtree_requests_consistent(self, params):
        tree = build_problem(params).tree
        for node_id in tree.node_ids:
            expected = sum(
                tree.client(cid).requests for cid in tree.subtree_clients(node_id)
            )
            assert tree.subtree_requests(node_id) == pytest.approx(expected)

    @given(params=tree_params)
    @settings(**SETTINGS)
    def test_serialization_roundtrip(self, params):
        tree = build_problem(params).tree
        assert tree_from_dict(tree_to_dict(tree)) == tree


class TestHeuristicInvariants:
    @given(
        params=tree_params,
        name=st.sampled_from(["CTDA", "CTDLF", "CBU", "UTD", "UBCF", "MTD", "MBU", "MG"]),
    )
    @settings(**SETTINGS)
    def test_heuristic_solutions_validate(self, params, name):
        problem = build_problem(params)
        heuristic = get_heuristic(name)
        solution = heuristic.try_solve(problem)
        if solution is None:
            return
        report = validate_solution(problem, solution, policy=heuristic.policy)
        assert report.valid, report.violations

    @given(params=tree_params)
    @settings(**SETTINGS)
    def test_policy_dominance_of_solutions(self, params):
        problem = build_problem(params)
        closest = get_heuristic("CTDA").try_solve(problem)
        if closest is not None:
            # A Closest solution is a valid Upwards and Multiple solution.
            assert validate_solution(problem, closest, policy=Policy.UPWARDS).valid
            assert validate_solution(problem, closest, policy=Policy.MULTIPLE).valid
        upwards = get_heuristic("UBCF").try_solve(problem)
        if upwards is not None:
            assert validate_solution(problem, upwards, policy=Policy.MULTIPLE).valid

    @given(params=tree_params)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_lp_bound_below_every_solution(self, params):
        from repro.lp.bounds import lp_lower_bound

        problem = build_problem(params)
        bound = lp_lower_bound(problem)
        for name in ("MG", "UBCF", "CTDA"):
            solution = get_heuristic(name).try_solve(problem)
            if solution is not None:
                assert bound.value <= solution.cost(problem) + 1e-6


class TestOptimalAlgorithmInvariants:
    @given(params=tree_params)
    @settings(**SETTINGS)
    def test_optimal_between_bound_and_greedy(self, params):
        if not params["homogeneous"]:
            return
        problem = build_problem(params)
        optimal = MultipleHomogeneousOptimal().try_solve(problem)
        greedy = MultipleGreedy().try_solve(problem)
        assert (optimal is None) == (greedy is None)
        if optimal is None:
            return
        assert optimal.replica_count() >= request_lower_bound(problem.tree)
        assert optimal.replica_count() <= greedy.replica_count()

    @given(params=tree_params)
    @settings(**SETTINGS)
    def test_assignment_conserves_requests(self, params):
        problem = build_problem(params)
        solution = MultipleGreedy().try_solve(problem)
        if solution is None:
            return
        assert solution.assignment.total_assigned() == pytest.approx(
            problem.tree.total_requests()
        )
