"""Cross-validation: every engine is bit-for-bit the seed dict engine.

Every heuristic of the paper runs once per registered engine on every
instance -- the seed :class:`~repro.algorithms.common.RequestState`
(``engine="dict"``), the indexed
:class:`~repro.algorithms.fast_state.FastRequestState` (``engine="fast"``)
and the compiled-kernel :class:`~repro.algorithms.native_state.NativeRequestState`
(``engine="native"``) -- and must produce *identical* feasibility verdicts,
replica placements, request assignments and costs.  The instance population
covers homogeneous and heterogeneous platforms, all client-attachment
shapes, hop-count and latency QoS, and bandwidth-constrained links, across
more than 50 seeded random instances.

A second battery drives the state implementations through the same
scripted operation sequences (place / assign / drain / cover) and compares
the full mutable state after every step.

When no C compiler is available the ``native`` engine falls back to the
fast state; the matrix still runs (the fallback must be equivalent too),
it just exercises the same code twice.
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import available_heuristics, get_heuristic
from repro.algorithms.common import (
    RequestState,
    available_engines,
    make_state,
    use_engine,
)
from repro.algorithms.fast_state import FastRequestState
from repro.core.constraints import ConstraintSet
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.tree import Link, TreeNetwork
from repro.workloads.generator import GeneratorConfig, TreeGenerator

#: The eight polynomial heuristics of paper Section 6.
HEURISTICS = ("CTDA", "CTDLF", "CBU", "UTD", "UBCF", "MG", "MTD", "MBU")

#: The full engine matrix, and the engines validated against the dict seed.
ENGINES = ("dict", "fast", "native")
ALT_ENGINES = tuple(engine for engine in ENGINES if engine != "dict")


def test_engine_matrix_covers_the_registry():
    assert set(ENGINES) == set(available_engines())


def with_bandwidth(tree: TreeNetwork, limit: float) -> TreeNetwork:
    """Copy of ``tree`` whose every link carries a finite bandwidth."""
    links = [
        Link(child=l.child, parent=l.parent, comm_time=l.comm_time, bandwidth=limit)
        for l in tree.links()
    ]
    return TreeNetwork(tree.nodes(), tree.clients(), links)


def instance(seed: int) -> ReplicaPlacementProblem:
    """Deterministic instance #seed; parameters sweep with the seed."""
    homogeneous = seed % 2 == 0
    qos = (2, 5) if seed % 3 == 1 else None
    attachments = ("spread", "leaves", "uniform")
    config = GeneratorConfig(
        size=(20, 34, 48, 62)[seed % 4],
        target_load=0.25 + 0.1 * (seed % 6),
        homogeneous=homogeneous,
        client_attachment=attachments[seed % 3],
        max_children=2 + seed % 3,
        qos_hops=qos,
    )
    tree = TreeGenerator(seed).generate(config)
    if seed % 5 == 2:
        # Bandwidth-limited links (generous enough to keep some instances
        # feasible; validation rejects violating solutions either way).
        tree = with_bandwidth(tree, limit=tree.total_capacity() / 2)
        constraints = (
            ConstraintSet.qos_distance(enforce_bandwidth=True)
            if qos
            else ConstraintSet(enforce_bandwidth=True)
        )
    elif qos and seed % 2 == 0:
        constraints = ConstraintSet.qos_latency()
    elif qos:
        constraints = ConstraintSet.qos_distance()
    else:
        constraints = ConstraintSet.none()
    kind = ProblemKind.REPLICA_COUNTING if homogeneous else ProblemKind.REPLICA_COST
    return ReplicaPlacementProblem(tree=tree, constraints=constraints, kind=kind)


#: >50 random instances, as the acceptance criteria require.
INSTANCE_SEEDS = list(range(56))


def solve_with(name: str, problem: ReplicaPlacementProblem, engine: str):
    heuristic = get_heuristic(name)
    with use_engine(engine):
        return heuristic.try_solve(problem)


def solve_both(name: str, problem: ReplicaPlacementProblem, engine: str = "fast"):
    """Seed solution and ``engine`` solution for one heuristic/instance."""
    return solve_with(name, problem, "dict"), solve_with(name, problem, engine)


@pytest.mark.parametrize("engine", ALT_ENGINES)
@pytest.mark.parametrize("name", HEURISTICS)
def test_every_heuristic_matches_seed_engine(name, engine):
    mismatches = []
    for seed in INSTANCE_SEEDS:
        problem = instance(seed)
        seed_solution, other_solution = solve_both(name, problem, engine)
        if (seed_solution is None) != (other_solution is None):
            mismatches.append((seed, "feasibility", seed_solution, other_solution))
            continue
        if seed_solution is None:
            continue
        if seed_solution.placement.replicas != other_solution.placement.replicas:
            mismatches.append((seed, "placement", seed_solution, other_solution))
        elif dict(seed_solution.assignment.items()) != dict(other_solution.assignment.items()):
            mismatches.append((seed, "assignment", seed_solution, other_solution))
        elif seed_solution.cost(problem) != other_solution.cost(problem):
            mismatches.append((seed, "cost", seed_solution, other_solution))
    assert not mismatches, f"{name} [{engine}] diverged from the seed engine: {mismatches[:3]}"


def test_engine_selection_controls_state_type(small_problem):
    from repro.algorithms.native_state import NativeRequestState, native_kernels_available

    with use_engine("dict"):
        assert type(make_state(small_problem)) is RequestState
    with use_engine("fast"):
        assert isinstance(make_state(small_problem), FastRequestState)
    assert isinstance(make_state(small_problem, engine="fast"), FastRequestState)
    native_state = make_state(small_problem, engine="native")
    if native_kernels_available():
        assert isinstance(native_state, NativeRequestState)
    else:
        # No compiler: the name stays valid and degrades to the fast engine.
        assert isinstance(native_state, FastRequestState)
        assert not isinstance(native_state, NativeRequestState)
    with pytest.raises(ValueError) as excinfo:
        make_state(small_problem, engine="nope")
    # The error enumerates the registry, so it cannot drift from it.
    for engine in available_engines():
        assert engine in str(excinfo.value)


def test_all_eight_heuristics_are_registered():
    registered = set(available_heuristics())
    assert set(HEURISTICS) <= registered


# --------------------------------------------------------------------------- #
# scripted state-operation equivalence
# --------------------------------------------------------------------------- #
def snapshot(state: RequestState):
    return (
        {cid: state.remaining[cid] for cid in state.tree.client_ids},
        {nid: state.inreq[nid] for nid in state.tree.node_ids},
        {nid: state.residual[nid] for nid in state.tree.node_ids},
        set(state.replicas),
        dict(state.amounts),
    )


def assert_states_agree(a: RequestState, b: RequestState):
    assert snapshot(a) == snapshot(b)
    assert a.total_pending() == b.total_pending()
    assert a.all_requests_affected() == b.all_requests_affected()
    for nid in a.tree.node_ids:
        assert a.pending_clients(nid) == b.pending_clients(nid)
        assert a.eligible_pending_clients(nid) == b.eligible_pending_clients(nid)
        assert a.eligible_inreq(nid) == pytest.approx(b.eligible_inreq(nid))


@pytest.mark.parametrize("engine", ALT_ENGINES)
@pytest.mark.parametrize("qos", [None, (2, 5)])
@pytest.mark.parametrize("seed", [0, 7, 19])
def test_scripted_operations_match(seed, qos, engine):
    tree = TreeGenerator(seed).generate(
        GeneratorConfig(size=36, target_load=0.5, homogeneous=False, qos_hops=qos)
    )
    constraints = ConstraintSet.qos_distance() if qos else ConstraintSet.none()
    problem = ReplicaPlacementProblem(tree=tree, constraints=constraints)
    dict_state = make_state(problem, engine="dict")
    other_state = make_state(problem, engine=engine)
    assert_states_agree(dict_state, other_state)

    nodes = list(tree.post_order_nodes())
    for step, node_id in enumerate(nodes):
        capacity = problem.capacity(node_id)
        if step % 3 == 0:
            for state in (dict_state, other_state):
                state.place(node_id)
                state.drain(node_id, capacity / 2, largest_first=True, split_last=False)
        elif step % 3 == 1:
            for state in (dict_state, other_state):
                state.drain(node_id, capacity, largest_first=False, split_last=True)
        else:
            for state in (dict_state, other_state):
                state.cover(node_id)
        assert_states_agree(dict_state, other_state)

    # Explicit single assignments exercise assign() symmetrically.
    for client in tree.clients():
        servers = problem.eligible_servers(client.id)
        if not servers:
            continue
        amount = min(2.0, dict_state.remaining[client.id])
        if amount <= 0:
            continue
        for state in (dict_state, other_state):
            state.assign(client.id, servers[-1], amount)
    assert_states_agree(dict_state, other_state)


class _EvenDepthQoS(ConstraintSet):
    """Deliberately non-monotone QoS metric: only even-depth servers allowed.

    A single depth threshold cannot represent this eligible set, so both the
    fast and the native engine must fall back to per-pair filtering (the
    native kernels never see a ``_qos_check`` problem) to match the seed.
    """

    def qos_metric(self, tree, client_id, server_id):
        return 0.0 if tree.depth(server_id) % 2 == 0 else float("inf")


@pytest.mark.parametrize("engine", ALT_ENGINES)
def test_non_monotone_constraint_subclass_matches_seed_engine(engine):
    from repro.core.constraints import QoSMode

    constraints = _EvenDepthQoS(qos_mode=QoSMode.DISTANCE)
    for seed in range(6):
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(size=30, target_load=0.4, homogeneous=False, qos_hops=(2, 5))
        )
        problem = ReplicaPlacementProblem(tree=tree, constraints=constraints)
        dict_state = make_state(problem, engine="dict")
        other_state = make_state(problem, engine=engine)
        for nid in tree.node_ids:
            assert dict_state.eligible_pending_clients(nid) == other_state.eligible_pending_clients(nid)
            assert dict_state.eligible_inreq(nid) == pytest.approx(other_state.eligible_inreq(nid))
        for name in HEURISTICS:
            seed_solution, other_solution = solve_both(name, problem, engine)
            assert (seed_solution is None) == (other_solution is None), (name, engine)
            if seed_solution is not None:
                assert seed_solution.placement.replicas == other_solution.placement.replicas
                assert dict(seed_solution.assignment.items()) == dict(
                    other_solution.assignment.items()
                )


@pytest.mark.parametrize("engine", ALT_ENGINES)
def test_unserved_summary_matches(small_problem, engine):
    dict_state = make_state(small_problem, engine="dict")
    other_state = make_state(small_problem, engine=engine)
    assert dict_state.unserved_summary() == other_state.unserved_summary()
    for state in (dict_state, other_state):
        state.place("n1")
        state.cover("n1")
    assert dict_state.unserved_summary() == other_state.unserved_summary()


@pytest.mark.parametrize("engine", ALT_ENGINES)
def test_state_to_solution_round_trip(small_problem, engine):
    from repro.core.policies import Policy

    state = make_state(small_problem, engine=engine)
    state.place("root")
    covered = state.cover("root")
    assert covered == pytest.approx(12.0)
    solution = state.to_solution(Policy.MULTIPLE, "manual")
    assert solution.assignment.total_assigned() == pytest.approx(12.0)
    assert solution.placement.replicas == frozenset({"root"})
