"""Unit tests for solutions (placement/assignment) and constraint validation."""

from __future__ import annotations

import math

import pytest

from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError, PolicyViolationError
from repro.core.policies import Policy
from repro.core.problem import replica_cost_problem
from repro.core.solution import Assignment, Placement, Solution
from repro.core.validation import closest_server_map, validate_solution


def solution_for(small_tree, amounts, replicas, policy=Policy.MULTIPLE):
    return Solution(
        placement=Placement(replicas),
        assignment=Assignment(amounts),
        policy=policy,
        algorithm="test",
    )


class TestPlacement:
    def test_membership_iteration_and_len(self):
        placement = Placement(["a", "b"])
        assert "a" in placement and "c" not in placement
        assert sorted(placement) == ["a", "b"]
        assert len(placement) == 2

    def test_union(self):
        assert sorted(Placement(["a"]) | Placement(["b"])) == ["a", "b"]

    def test_sorted_is_deterministic(self):
        assert Placement(["b", "a"]).sorted() == ("a", "b")

    def test_restricted_to(self, small_tree):
        placement = Placement(["root", "ghost"])
        assert set(placement.restricted_to(small_tree)) == {"root"}


class TestAssignment:
    def test_amounts_and_totals(self):
        assignment = Assignment({("c1", "n1"): 4, ("c1", "root"): 3, ("c2", "n1"): 5})
        assert assignment.amount("c1", "n1") == 4
        assert assignment.amount("c1", "ghost") == 0
        assert assignment.client_total("c1") == 7
        assert assignment.server_load("n1") == 9
        assert assignment.total_assigned() == 12
        assert len(assignment) == 3

    def test_zero_amounts_are_dropped(self):
        assignment = Assignment({("c1", "n1"): 0.0})
        assert len(assignment) == 0

    def test_negative_amounts_rejected(self):
        with pytest.raises(PolicyViolationError):
            Assignment({("c1", "n1"): -1})

    def test_servers_and_clients_lookup(self):
        assignment = Assignment({("c1", "n1"): 4, ("c1", "root"): 3})
        assert set(assignment.servers_of("c1")) == {"n1", "root"}
        assert assignment.clients_of("n1") == ("c1",)
        assert assignment.used_servers() == {"n1", "root"}

    def test_single_server_constructor(self, small_tree):
        assignment = Assignment.single_server({"c1": "n1", "c2": "root"}, small_tree)
        assert assignment.amount("c1", "n1") == 7
        assert assignment.amount("c2", "root") == 3

    def test_link_flows(self, small_tree):
        assignment = Assignment({("c1", "root"): 7, ("c2", "n1"): 5})
        flows = assignment.link_flows(small_tree)
        assert flows[("c1", "n1")] == 7
        assert flows[("n1", "root")] == 7
        assert flows[("c2", "n1")] == 5

    def test_is_integral(self):
        assert Assignment({("c", "n"): 3.0}).is_integral()
        assert not Assignment({("c", "n"): 2.5}).is_integral()

    def test_copy_and_equality(self):
        original = Assignment({("c", "n"): 3.0})
        assert original.copy() == original

    def test_server_loads_mapping(self):
        assignment = Assignment({("c1", "n1"): 4, ("c2", "n1"): 5, ("c1", "root"): 1})
        assert assignment.server_loads() == {"n1": 9.0, "root": 1.0}


class TestSolutionObject:
    def test_cost_and_replica_count(self, small_problem, small_tree):
        sol = solution_for(small_tree, {("c1", "n1"): 7}, ["n1"])
        assert sol.replica_count() == 1
        assert sol.cost(small_problem) == 10  # Replica Cost: s = W

    def test_server_utilisation(self, small_tree):
        sol = solution_for(small_tree, {("c1", "n1"): 7}, ["n1", "root"])
        util = sol.server_utilisation(small_tree)
        assert util["n1"] == pytest.approx(0.7)
        assert util["root"] == 0.0

    def test_with_algorithm_and_summary(self, small_problem, small_tree):
        sol = solution_for(small_tree, {("c1", "n1"): 7}, ["n1"])
        renamed = sol.with_algorithm("other")
        assert renamed.algorithm == "other"
        assert "replicas=1" in renamed.summary(small_problem)


class TestValidation:
    def full_amounts(self):
        return {("c1", "n1"): 7, ("c2", "n1"): 3, ("c3", "root"): 2}

    def test_valid_multiple_solution(self, small_problem, small_tree):
        sol = solution_for(small_tree, self.full_amounts(), ["n1", "root"])
        report = validate_solution(small_problem, sol)
        assert report.valid and not report.violations
        report.raise_if_invalid()  # does not raise

    def test_missing_coverage_detected(self, small_problem, small_tree):
        sol = solution_for(small_tree, {("c1", "n1"): 7}, ["n1"])
        report = validate_solution(small_problem, sol)
        assert not report.valid and "coverage" in report.categories

    def test_capacity_violation_detected(self, small_problem, small_tree):
        amounts = {("c1", "root"): 7, ("c2", "root"): 3, ("c3", "root"): 2}
        sol = solution_for(small_tree, amounts, ["root"])
        report = validate_solution(small_problem, sol)
        assert "capacity" in report.categories

    def test_unplaced_server_detected(self, small_problem, small_tree):
        sol = solution_for(small_tree, self.full_amounts(), ["n1"])  # root missing
        report = validate_solution(small_problem, sol)
        assert "structure" in report.categories

    def test_non_ancestor_server_detected(self, small_problem, small_tree):
        amounts = {("c3", "n1"): 2, ("c1", "n1"): 7, ("c2", "n1"): 5}
        sol = solution_for(small_tree, amounts, ["n1"])
        report = validate_solution(small_problem, sol)
        assert "structure" in report.categories

    def test_single_server_policy_violation(self, small_problem, small_tree):
        amounts = {("c1", "n1"): 4, ("c1", "root"): 3, ("c2", "n1"): 3, ("c3", "root"): 2}
        sol = solution_for(small_tree, amounts, ["n1", "root"], policy=Policy.UPWARDS)
        report = validate_solution(small_problem, sol)
        assert "policy" in report.categories

    def test_closest_must_use_lowest_replica(self, small_problem, small_tree):
        # c1 served at the root although n1 holds a replica: invalid for Closest.
        amounts = {("c1", "root"): 7, ("c2", "n1"): 3, ("c3", "root"): 2}
        sol = solution_for(small_tree, amounts, ["n1", "root"], policy=Policy.CLOSEST)
        report = validate_solution(small_problem, sol)
        assert "policy" in report.categories

    def test_closest_valid_when_lowest_used(self, small_problem, small_tree):
        amounts = {("c1", "n1"): 7, ("c2", "n1"): 3, ("c3", "root"): 2}
        sol = solution_for(small_tree, amounts, ["n1", "root"], policy=Policy.CLOSEST)
        assert validate_solution(small_problem, sol).valid

    def test_qos_violation_detected(self, qos_tree):
        problem = replica_cost_problem(qos_tree, constraints=ConstraintSet.qos_distance())
        amounts = {("near", "root"): 5, ("far", "root"): 5, ("top", "root"): 5}
        sol = solution_for(qos_tree, amounts, ["root"])
        report = validate_solution(problem, sol)
        assert "qos" in report.categories

    def test_bandwidth_violation_detected(self):
        from repro.core.builder import TreeBuilder

        tree = (
            TreeBuilder()
            .add_node("root", capacity=100)
            .add_node("n1", capacity=100, parent="root", bandwidth=3)
            .add_client("c", requests=10, parent="n1")
            .build()
        )
        problem = replica_cost_problem(
            tree, constraints=ConstraintSet(enforce_bandwidth=True)
        )
        sol = solution_for(tree, {("c", "root"): 10}, ["root"])
        report = validate_solution(problem, sol)
        assert "bandwidth" in report.categories

    def test_raise_if_invalid(self, small_problem, small_tree):
        sol = solution_for(small_tree, {}, [])
        report = validate_solution(small_problem, sol)
        with pytest.raises(InfeasibleError):
            report.raise_if_invalid()

    def test_bool_protocol(self, small_problem, small_tree):
        good = solution_for(small_tree, self.full_amounts(), ["n1", "root"])
        assert bool(validate_solution(small_problem, good)) is True

    def test_closest_server_map(self, small_tree):
        servers = closest_server_map(small_tree, ["root"])
        assert servers == {"c1": "root", "c2": "root", "c3": "root"}
        servers = closest_server_map(small_tree, ["n1"])
        assert servers == {"c1": "n1", "c2": "n1"}
