"""Tests of the experiment harness: metrics, campaigns, figures, tables, ablations."""

from __future__ import annotations

import math

import pytest

from repro.experiments.ablations import (
    ablate_drain_order,
    ablate_lower_bound,
    ablate_mixed_best,
    ablate_second_pass,
)
from repro.experiments.figures import (
    figure9_homogeneous_success,
    figure10_homogeneous_cost,
    figure11_heterogeneous_success,
    figure12_heterogeneous_cost,
    reduced_config,
)
from repro.experiments.harness import CampaignConfig, run_campaign
from repro.experiments.metrics import RelativeCostAccumulator, relative_cost, success_rate
from repro.experiments.reporting import ascii_table, format_float, series_table, series_to_csv


class TestMetrics:
    def test_success_rate(self):
        assert success_rate([1.0, None, 2.0, math.inf]) == pytest.approx(0.5)
        assert success_rate([]) == 0.0
        assert success_rate([None, None]) == 0.0

    def test_relative_cost_basic(self):
        # bounds 2 and 3; heuristic costs 4 and 3 -> (0.5 + 1.0) / 2
        assert relative_cost([2, 3], [4, 3]) == pytest.approx(0.75)

    def test_relative_cost_failures_count_as_zero(self):
        assert relative_cost([2, 2], [2, None]) == pytest.approx(0.5)

    def test_relative_cost_skips_infeasible_instances(self):
        assert relative_cost([math.inf, 2], [None, 2]) == pytest.approx(1.0)

    def test_relative_cost_never_exceeds_one_for_valid_costs(self):
        # heuristic cost >= lower bound on every solvable instance
        assert relative_cost([5, 7], [5, 10]) <= 1.0

    def test_accumulator_tracks_failures(self):
        acc = RelativeCostAccumulator()
        acc.add(2, 4)
        acc.add(2, None)
        assert acc.count == 2 and acc.failures == 1
        assert acc.value() == pytest.approx(0.25)

    def test_accumulator_zero_cost_counts_as_perfect(self):
        acc = RelativeCostAccumulator()
        acc.add(0.0, 0.0)
        assert acc.value() == pytest.approx(1.0)


class TestReporting:
    def test_format_float(self):
        assert format_float(None) == "-"
        assert format_float(math.inf) == "inf"
        assert format_float(1.23456, 2) == "1.23"
        assert format_float(7) == "7"

    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "value"], [("a", 1.5), ("longer", 2)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len({len(line) for line in lines}) == 1  # all rows same width

    def test_series_table_has_one_column_per_series(self):
        table = series_table({"A": {0.1: 1.0, 0.2: 0.5}, "B": {0.1: 0.9}})
        assert "A" in table and "B" in table and "lambda" in table

    def test_series_to_csv(self):
        csv_text = series_to_csv({"A": {0.1: 1.0}})
        assert csv_text.splitlines()[0] == "lambda,A"
        assert "0.1,1.0" in csv_text


@pytest.fixture(scope="module")
def tiny_campaign():
    config = CampaignConfig(
        homogeneous=True,
        trees_per_lambda=2,
        size_range=(15, 30),
        lambdas=(0.2, 0.5),
        seed=7,
    )
    return run_campaign(config)


class TestCampaign:
    def test_record_count(self, tiny_campaign):
        assert len(tiny_campaign.records) == 4

    def test_success_series_contains_lp_and_heuristics(self, tiny_campaign):
        series = tiny_campaign.success_series()
        assert "LP" in series and "MixedBest" in series
        for values in series.values():
            assert set(values) == {0.2, 0.5}

    def test_mg_success_equals_lp_success(self, tiny_campaign):
        series = tiny_campaign.success_series()
        assert series["MG"] == series["LP"]

    def test_relative_cost_bounded_by_one(self, tiny_campaign):
        series = tiny_campaign.relative_cost_series()
        for name, values in series.items():
            for value in values.values():
                assert 0.0 <= value <= 1.0 + 1e-9

    def test_mixed_best_at_least_every_component(self, tiny_campaign):
        series = tiny_campaign.relative_cost_series()
        for load, value in series["MixedBest"].items():
            for name in ("CTDA", "UTD", "MG", "MTD", "MBU", "UBCF"):
                assert value >= series[name][load] - 1e-9

    def test_tables_render(self, tiny_campaign):
        assert "lambda" in tiny_campaign.success_table()
        assert "MixedBest" in tiny_campaign.relative_cost_table()
        assert "instances" in tiny_campaign.describe()

    def test_runtimes_recorded(self, tiny_campaign):
        record = tiny_campaign.records[0]
        assert set(record.runtimes) == set(tiny_campaign.config.heuristics)

    def test_trivial_lower_bound_mode(self):
        config = CampaignConfig(
            homogeneous=True,
            trees_per_lambda=1,
            size_range=(15, 20),
            lambdas=(0.3,),
            lower_bound_method="trivial",
            seed=5,
        )
        result = run_campaign(config)
        assert all(math.isfinite(r.lower_bound) for r in result.records)

    def test_scaled_config(self):
        config = CampaignConfig().scaled(trees_per_lambda=2, size_range=(15, 20))
        assert config.trees_per_lambda == 2 and config.size_range == (15, 20)


class TestFigures:
    @pytest.fixture(scope="class")
    def homogeneous_campaign(self):
        return run_campaign(
            reduced_config(
                homogeneous=True,
                trees_per_lambda=2,
                size_range=(15, 30),
                lambdas=(0.2, 0.6),
                seed=11,
            )
        )

    def test_figure9_series_shapes(self, homogeneous_campaign):
        figure = figure9_homogeneous_success(campaign=homogeneous_campaign)
        assert figure.figure == "Figure 9"
        assert figure.at("LP", 0.2) is not None
        assert "lambda" in figure.table()

    def test_figure10_uses_same_campaign(self, homogeneous_campaign):
        figure = figure10_homogeneous_cost(campaign=homogeneous_campaign)
        assert figure.quantity == "relative_cost"
        assert figure.at("MixedBest", 0.2) >= figure.at("CTDA", 0.2) - 1e-9

    def test_figure11_and_12_run_heterogeneous(self):
        config = reduced_config(
            homogeneous=False,
            trees_per_lambda=1,
            size_range=(15, 25),
            lambdas=(0.3,),
            seed=13,
        )
        campaign = run_campaign(config)
        fig11 = figure11_heterogeneous_success(campaign=campaign)
        fig12 = figure12_heterogeneous_cost(campaign=campaign)
        assert fig11.at("LP", 0.3) is not None
        assert fig12.at("MixedBest", 0.3) is not None

    def test_figure_at_returns_none_for_unknown_point(self, homogeneous_campaign):
        figure = figure9_homogeneous_success(campaign=homogeneous_campaign)
        assert figure.at("LP", 0.9) is None


@pytest.mark.slow
class TestTables:
    def test_table1_evidence_consistent(self):
        from repro.experiments.tables import table1_evidence, table1_table

        rows = table1_evidence(instances=2, seed=3)
        assert len(rows) == 6
        assert all(row.consistent for row in rows)
        rendering = table1_table(rows)
        assert "NP-complete" in rendering

    def test_section3_examples_table(self):
        from repro.experiments.tables import section3_examples_table

        table = section3_examples_table(n=2, big_factor=5.0)
        assert "Figure 1(b)" in table and "infeasible" in table


class TestAblations:
    def test_drain_order(self):
        result = ablate_drain_order(count=4, seed=3)
        assert set(result.metrics) == {"MBU (smallest first)", "MBU (largest first)"}

    def test_second_pass_improves_success(self):
        result = ablate_second_pass(count=6, seed=4)
        with_pass = result.metrics["UTD (two passes)"]["success"]
        without_pass = result.metrics["UTD (first pass only)"]["success"]
        assert with_pass >= without_pass

    def test_lower_bound_ablation_reports_tightening(self):
        result = ablate_lower_bound(count=3, seed=5)
        assert result.metrics["mixed"]["mean_bound_ratio"] >= 1.0 - 1e-9

    def test_mixed_best_never_worse_than_mg(self):
        result = ablate_mixed_best(count=4, seed=6)
        assert (
            result.metrics["MixedBest"]["relative_cost"]
            >= result.metrics["MG alone"]["relative_cost"] - 1e-9
        )
