"""Tests of the dynamic-workload subsystem (PR 2).

Four layers are covered:

* the epoch fork plumbing -- :meth:`TreeNetwork.with_requests` and the
  patched :class:`TreeIndex` must be bit-identical to fresh builds;
* the trajectory generators of :mod:`repro.workloads.dynamic`;
* the :class:`IncrementalResolver` / :func:`repro.api.solve_sequence`
  stack, cross-validated against from-scratch solves epoch by epoch (the
  PR's acceptance criterion);
* the CLI surface and the churn campaign of the experiment harness.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.incremental import (
    IncrementalResolver,
    diff_problems,
    migration_stats,
)
from repro.api import solve, solve_sequence
from repro.cli import main as cli_main
from repro.core.builder import TreeBuilder
from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError, TreeStructureError
from repro.core.index import TreeIndex
from repro.core.policies import Policy
from repro.core.problem import (
    ProblemKind,
    ReplicaPlacementProblem,
    replica_cost_problem,
    replica_counting_problem,
)
from repro.core.serialization import save_tree
from repro.core.solution import Assignment, Placement, Solution
from repro.core.tree import Client
from repro.core.validation import validate_solution
from repro.workloads import generate_tree
from repro.workloads.dynamic import (
    capacity_incident,
    client_join_leave,
    ramp,
    rate_churn,
    regional_churn,
    seasonal,
    step_change,
)
from tests.conftest import assert_valid


# --------------------------------------------------------------------------- #
# epoch forks: with_requests and the patched TreeIndex
# --------------------------------------------------------------------------- #
INDEX_WORKLOAD_FIELDS = ("client_requests", "remaining_template", "inreq_template")
INDEX_STRUCTURAL_FIELDS = (
    "node_order",
    "client_order",
    "node_span_end",
    "client_span_start",
    "client_span_end",
    "node_parent",
    "client_parent",
    "node_depth",
    "client_depth",
    "node_ancestors",
    "client_ancestors",
    "client_repr",
    "residual_template",
)


class TestWithRequests:
    def test_fork_equals_full_rebuild(self):
        tree = generate_tree(size=50, target_load=0.5, seed=2)
        updates = {tree.client_ids[0]: 3.0, tree.client_ids[7]: 0.0}
        fork = tree.with_requests(updates)
        rebuilt = tree.with_clients(
            [
                Client(id=cid, requests=value, qos=tree.client(cid).qos)
                for cid, value in updates.items()
            ]
        )
        assert fork == rebuilt
        assert fork._subtree_requests == rebuilt._subtree_requests
        assert fork.total_requests() == rebuilt.total_requests()

    def test_fork_shares_structural_caches(self):
        tree = generate_tree(size=30, target_load=0.4, seed=3)
        fork = tree.with_requests({tree.client_ids[0]: 5.0})
        assert fork._ancestors is tree._ancestors
        assert fork._subtree_clients is tree._subtree_clients
        assert fork._order is tree._order
        assert fork._links is tree._links

    def test_noop_fork_is_distinct_but_equal(self):
        tree = generate_tree(size=30, target_load=0.4, seed=3)
        fork = tree.with_requests({})
        assert fork is not tree and fork == tree
        assert fork._clients is tree._clients

    def test_unchanged_rates_not_marked_changed(self):
        tree = generate_tree(size=30, target_load=0.4, seed=3)
        cid = tree.client_ids[0]
        fork = tree.with_requests({cid: tree.client(cid).requests})
        assert fork._patch_source[1] == ()

    def test_unknown_client_raises(self):
        tree = generate_tree(size=30, target_load=0.4, seed=3)
        with pytest.raises(TreeStructureError):
            tree.with_requests({"ghost": 1.0})

    def test_negative_rate_raises(self):
        tree = generate_tree(size=30, target_load=0.4, seed=3)
        with pytest.raises(TreeStructureError):
            tree.with_requests({tree.client_ids[0]: -1.0})

    def test_qos_bounds_preserved(self):
        tree = generate_tree(size=30, target_load=0.4, seed=4, qos_hops=(2, 4))
        cid = tree.client_ids[0]
        fork = tree.with_requests({cid: 1.0})
        assert fork.client(cid).qos == tree.client(cid).qos


class TestPatchedIndex:
    def assert_index_equal(self, left: TreeIndex, right: TreeIndex):
        for field in INDEX_STRUCTURAL_FIELDS + INDEX_WORKLOAD_FIELDS:
            assert getattr(left, field) == getattr(right, field), field

    def test_patched_index_equals_fresh_build(self):
        tree = generate_tree(size=60, target_load=0.5, seed=5)
        TreeIndex.for_tree(tree)  # ensure the base index exists
        fork = tree.with_requests({tree.client_ids[3]: 2.0, tree.client_ids[9]: 11.0})
        patched = TreeIndex.for_tree(fork)
        self.assert_index_equal(patched, TreeIndex(fork))
        # Structural arrays are shared, not copied.
        assert patched.client_ancestors is TreeIndex.for_tree(tree).client_ancestors

    def test_chained_forks_keep_patching(self):
        tree = generate_tree(size=40, target_load=0.5, seed=6)
        TreeIndex.for_tree(tree)
        current = tree
        for step, cid in enumerate(tree.client_ids[:5]):
            current = current.with_requests({cid: float(step + 1)})
            TreeIndex.for_tree(current)
        self.assert_index_equal(current._index_cache, TreeIndex(current))

    def test_fork_without_base_index_builds_fresh(self):
        tree = generate_tree(size=30, target_load=0.4, seed=7)
        fork = tree.with_requests({tree.client_ids[0]: 4.0})
        assert tree._index_cache is None
        self.assert_index_equal(TreeIndex.for_tree(fork), TreeIndex(fork))

    def test_patching_skips_never_indexed_intermediate_forks(self):
        """Regression: quiet (reused, never solved) epochs must not break the
        patch chain -- the next solved epoch patches from the last indexed
        ancestor, unioning the changed clients along the way."""
        tree = generate_tree(size=40, target_load=0.5, seed=9)
        base_index = TreeIndex.for_tree(tree)
        quiet = tree.with_requests({})  # reused epoch: never indexed
        drifted = quiet.with_requests({tree.client_ids[2]: 7.0})
        changed_again = drifted.with_requests({tree.client_ids[2]: 9.0, tree.client_ids[4]: 1.0})
        assert quiet._index_cache is None and drifted._index_cache is None
        patched = TreeIndex.for_tree(changed_again)
        # Shared structure proves it was patched (from base), not rebuilt.
        assert patched.client_ancestors is base_index.client_ancestors
        self.assert_index_equal(patched, TreeIndex(changed_again))

    def test_patch_source_released_once_indexed(self):
        """Regression: the fork back-references must not root the whole epoch
        history once a fork has its own index."""
        tree = generate_tree(size=30, target_load=0.4, seed=9)
        TreeIndex.for_tree(tree)
        fork = tree.with_requests({tree.client_ids[0]: 2.0})
        assert fork._patch_source is not None
        TreeIndex.for_tree(fork)
        assert fork._patch_source is None

    def test_qos_thresholds_shared_and_correct(self):
        tree = generate_tree(size=40, target_load=0.4, seed=8, qos_hops=(2, 4))
        problem = replica_cost_problem(tree, constraints=ConstraintSet.qos_distance())
        base_index = TreeIndex.for_tree(tree)
        base_thresholds = base_index.qos_depth_thresholds(problem)
        fork = tree.with_requests({tree.client_ids[0]: 2.0})
        fork_problem = replica_cost_problem(fork, constraints=ConstraintSet.qos_distance())
        fork_index = TreeIndex.for_tree(fork)
        assert fork_index.qos_depth_thresholds(fork_problem) == base_thresholds
        assert fork_index.qos_threshold_cache is base_index.qos_threshold_cache


# --------------------------------------------------------------------------- #
# trajectory generators
# --------------------------------------------------------------------------- #
class TestTrajectories:
    @pytest.fixture
    def base(self):
        return replica_counting_problem(
            generate_tree(size=40, target_load=0.4, seed=10)
        )

    def test_epoch_zero_is_base(self, base):
        for epochs in (
            rate_churn(base, 4, seed=1),
            ramp(base, 4, end_factor=1.5),
            seasonal(base, 4),
            step_change(base, 4, at=2, factor=2.0),
        ):
            assert len(epochs) == 4
            assert epochs[0] is base
            for problem in epochs:
                assert problem.kind is base.kind
                assert problem.constraints == base.constraints

    def test_rates_stay_integral_and_non_negative(self, base):
        for epochs in (
            rate_churn(base, 6, churn=0.5, magnitude=0.9, seed=2),
            ramp(base, 6, end_factor=0.3),
            seasonal(base, 6, amplitude=0.8, period=3),
        ):
            for problem in epochs:
                for client in problem.tree.clients():
                    assert client.requests >= 0
                    assert client.requests == int(client.requests)

    def test_step_applies_factor_from_at_onwards(self, base):
        epochs = step_change(base, 5, at=2, factor=2.0)
        for t, problem in enumerate(epochs):
            for cid in base.tree.client_ids:
                expected = base.tree.client(cid).requests * (2.0 if t >= 2 else 1.0)
                assert problem.tree.client(cid).requests == round(expected)

    def test_ramp_hits_end_factor(self, base):
        epochs = ramp(base, 5, end_factor=2.0)
        for cid in base.tree.client_ids:
            assert epochs[-1].tree.client(cid).requests == round(
                base.tree.client(cid).requests * 2.0
            )

    def test_ramp_realises_start_factor_at_first_scaled_epoch(self, base):
        """Regression: the first scaled epoch used to overshoot start_factor."""
        epochs = ramp(base, 5, start_factor=2.0, end_factor=4.0)
        for cid in base.tree.client_ids:
            rate = base.tree.client(cid).requests
            assert epochs[1].tree.client(cid).requests == round(rate * 2.0)
            assert epochs[-1].tree.client(cid).requests == round(rate * 4.0)

    def test_seasonal_returns_to_base_at_period(self, base):
        epochs = seasonal(base, 9, amplitude=0.5, period=4.0)
        assert epochs[8].tree.total_requests() == base.tree.total_requests()

    def test_churn_deterministic_given_seed(self, base):
        first = rate_churn(base, 6, churn=0.3, seed=42)
        second = rate_churn(base, 6, churn=0.3, seed=42)
        for left, right in zip(first, second):
            assert left.tree == right.tree

    def test_churn_quiet_epochs_change_nothing(self, base):
        epochs = rate_churn(base, 8, churn=1.0, quiet_probability=1.0, seed=3)
        for problem in epochs[1:]:
            assert problem.tree == base.tree

    def test_join_leave_produces_valid_trees(self, base):
        epochs = client_join_leave(
            base, 6, join_rate=0.3, leave_rate=0.3, seed=4
        )
        populations = {len(problem.tree.client_ids) for problem in epochs}
        assert len(populations) > 1  # topology actually churned
        for problem in epochs:
            assert len(problem.tree.client_ids) >= 1
            # TreeNetwork construction re-validates structure; solving works.
            assert solve(problem, policy="multiple") is not None

    def test_capacity_incident_window(self):
        base = replica_cost_problem(generate_tree(size=30, target_load=0.3, seed=11))
        epochs = capacity_incident(
            base, 6, at=2, duration=2, fraction=0.3, factor=0.5, seed=5
        )
        healthy = base.tree.total_capacity()
        capacities = [problem.tree.total_capacity() for problem in epochs]
        assert capacities[0] == capacities[1] == healthy
        assert capacities[2] == capacities[3] < healthy
        assert capacities[4] == capacities[5] == healthy

    def test_capacity_incident_rejects_counting_kind(self, base):
        with pytest.raises(ValueError):
            capacity_incident(base, 4, at=1, factor=0.5)

    def test_unchanged_epochs_preserve_fractional_rates(self):
        """Regression: factor-1.0 epochs must not round non-integral rates."""
        tree = (
            TreeBuilder()
            .add_node("root", capacity=10)
            .add_client("c", requests=2.5, parent="root")
            .build()
        )
        base = replica_cost_problem(tree)
        epochs = step_change(base, 5, at=3, factor=2)
        for problem in epochs[:3]:
            assert problem.tree.client("c").requests == 2.5
        assert epochs[3].tree.client("c").requests == 5.0
        # The pre-step epochs are therefore reusable by the resolver.
        result = solve_sequence(epochs, policy="multiple")
        assert result.strategy_counts()["reused"] >= 2

    def test_probability_parameters_validated(self, base):
        with pytest.raises(ValueError):
            rate_churn(base, 4, quiet_probability=1.5)
        with pytest.raises(ValueError):
            client_join_leave(base, 4, join_rate=1.5)
        with pytest.raises(ValueError):
            client_join_leave(base, 4, leave_rate=-0.1)


# --------------------------------------------------------------------------- #
# diffing and migration accounting
# --------------------------------------------------------------------------- #
class TestDiffAndMigrations:
    def test_diff_unchanged(self):
        tree = generate_tree(size=20, target_load=0.3, seed=12)
        problem = replica_counting_problem(tree)
        fork = ReplicaPlacementProblem(tree=tree.with_requests({}), kind=problem.kind)
        delta = diff_problems(problem, fork)
        assert delta.unchanged and not delta.rates_only

    def test_diff_rates_only(self):
        tree = generate_tree(size=20, target_load=0.3, seed=12)
        problem = replica_counting_problem(tree)
        cid = tree.client_ids[1]
        fork = ReplicaPlacementProblem(
            tree=tree.with_requests({cid: 123.0}), kind=problem.kind
        )
        delta = diff_problems(problem, fork)
        assert delta.rates_only and delta.changed_clients == (cid,)

    def test_diff_topology_change(self):
        tree = generate_tree(size=20, target_load=0.3, seed=12)
        problem = replica_counting_problem(tree)
        other = client_join_leave(problem, 2, join_rate=1.0, leave_rate=0.0, seed=1)[1]
        delta = diff_problems(problem, other)
        assert delta.topology_changed and not delta.rates_only

    def test_diff_settings_change(self):
        tree = generate_tree(size=20, target_load=0.3, seed=12)
        problem = replica_counting_problem(tree)
        other = problem.with_constraints(ConstraintSet.qos_distance())
        assert diff_problems(problem, other).settings_changed

    def test_migration_stats_hand_case(self):
        def solution(placement, amounts):
            return Solution(
                placement=Placement(placement),
                assignment=Assignment(amounts),
                policy=Policy.MULTIPLE,
            )

        before = solution(["a", "b"], {("c1", "a"): 5, ("c2", "b"): 3})
        after = solution(["b", "d"], {("c1", "b"): 5, ("c2", "b"): 4})
        added, dropped, reassigned = migration_stats(before, after)
        assert added == 1  # d
        assert dropped == 1  # a
        assert reassigned == pytest.approx(5 + 1)  # c1 moved, c2 grew by 1

    def test_migration_stats_cold_start_and_infeasible(self):
        solution = Solution(
            placement=Placement(["a"]),
            assignment=Assignment({("c", "a"): 2}),
            policy=Policy.MULTIPLE,
        )
        assert migration_stats(None, solution) == (1, 0, 2.0)
        assert migration_stats(solution, None) == (0, 1, 0.0)
        assert migration_stats(None, None) == (0, 0, 0.0)


# --------------------------------------------------------------------------- #
# the acceptance criterion: incremental == from-scratch, epoch by epoch
# --------------------------------------------------------------------------- #
def churn_cases():
    """(base problem, policy) cases for the 10%-churn cross-validation."""
    cases = []
    for seed in (31, 32, 33):
        tree = generate_tree(size=50, target_load=0.4, seed=seed)
        cases.append((replica_counting_problem(tree), "multiple"))
    tree = generate_tree(size=50, target_load=0.35, homogeneous=False, seed=34)
    cases.append((replica_cost_problem(tree), "upwards"))
    tree = generate_tree(size=50, target_load=0.2, seed=35)
    cases.append((replica_counting_problem(tree), "closest"))
    qos_tree = generate_tree(size=50, target_load=0.35, seed=36, qos_hops=(3, 6))
    cases.append(
        (
            replica_cost_problem(qos_tree, constraints=ConstraintSet.qos_distance()),
            "multiple",
        )
    )
    return cases


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("case", range(len(churn_cases())))
    def test_ten_percent_churn_matches_scratch(self, case):
        base, policy = churn_cases()[case]
        epochs = rate_churn(
            base, 10, churn=0.1, magnitude=0.5, quiet_probability=0.3, seed=100 + case
        )
        incremental = solve_sequence(epochs, policy=policy, mode="incremental")
        scratch = solve_sequence(epochs, policy=policy, mode="scratch")
        # Bit-identical costs on every epoch...
        assert incremental.costs == scratch.costs
        # ... and in fact identical placements and assignments.
        for left, right in zip(incremental.solutions, scratch.solutions):
            assert (left is None) == (right is None)
            if left is not None:
                assert left.placement.replicas == right.placement.replicas
                assert left.assignment == right.assignment
        # The incremental run must have skipped exactly the unchanged epochs.
        quiet_epochs = sum(
            1
            for previous, current in zip(epochs, epochs[1:])
            if current.tree == previous.tree
        )
        assert incremental.strategy_counts().get("reused", 0) == quiet_epochs
        assert scratch.strategy_counts() == {"solved": len(epochs)}

    def test_zero_churn_reuses_every_epoch(self):
        base = replica_counting_problem(generate_tree(size=40, target_load=0.4, seed=41))
        epochs = rate_churn(base, 6, churn=0.0, seed=1)
        result = solve_sequence(epochs, policy="multiple")
        assert result.strategy_counts() == {"solved": 1, "reused": 5}
        assert len(set(map(id, filter(None, result.solutions)))) == 1

    def test_reused_infeasible_verdicts(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=2)
            .add_client("c", requests=5, parent="root")
            .build()
        )
        base = replica_cost_problem(tree)
        epochs = rate_churn(base, 4, churn=0.0, seed=1)
        result = solve_sequence(epochs, policy="multiple")
        assert result.solutions == [None] * 4
        assert result.strategy_counts() == {"solved": 1, "reused": 3}

    def test_on_error_raise(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=10)
            .add_client("c", requests=5, parent="root")
            .build()
        )
        base = replica_cost_problem(tree)
        epochs = step_change(base, 4, at=2, factor=10)
        with pytest.raises(InfeasibleError):
            solve_sequence(epochs, policy="multiple", on_error="raise")
        result = solve_sequence(epochs, policy="multiple", on_error="none")
        assert [s is None for s in result.solutions] == [False, False, True, True]

    def test_topology_churn_matches_scratch(self):
        base = replica_counting_problem(generate_tree(size=40, target_load=0.3, seed=42))
        epochs = client_join_leave(base, 6, join_rate=0.2, leave_rate=0.2, seed=7)
        incremental = solve_sequence(epochs, policy="multiple")
        scratch = solve_sequence(epochs, policy="multiple", mode="scratch")
        assert incremental.costs == scratch.costs

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            solve_sequence([], mode="telepathy")
        with pytest.raises(ValueError):
            IncrementalResolver(mode="telepathy")


class TestPatchMode:
    def test_patched_solutions_are_valid_and_placement_stable(self):
        base = replica_counting_problem(generate_tree(size=50, target_load=0.5, seed=51))
        epochs = rate_churn(base, 10, churn=0.15, quiet_probability=0.2, seed=9)
        result = solve_sequence(epochs, policy="multiple", mode="patch")
        for problem, solution, stats in zip(epochs, result.solutions, result.stats):
            if solution is not None:
                assert_valid(problem, solution)
            if stats.strategy == "patched":
                # A successful patch never moves replicas.
                assert stats.replicas_added == 0 and stats.replicas_dropped == 0
        assert result.strategy_counts().get("patched", 0) > 0

    def test_patch_mode_reduces_reassignment_on_mild_churn(self):
        base = replica_counting_problem(generate_tree(size=50, target_load=0.5, seed=52))
        epochs = rate_churn(base, 10, churn=0.1, magnitude=0.3, seed=10)
        patch = solve_sequence(epochs, policy="multiple", mode="patch")
        scratch = solve_sequence(epochs, policy="multiple", mode="scratch")
        assert (
            patch.total_migrations()["requests_reassigned"]
            <= scratch.total_migrations()["requests_reassigned"]
        )

    def test_patch_falls_back_when_rates_explode(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=10)
            .add_node("a", capacity=10, parent="root")
            .add_client("c1", requests=6, parent="a")
            .add_client("c2", requests=4, parent="root")
            .build()
        )
        base = replica_cost_problem(tree)
        # Epoch 0 is served by the root alone (10 requests, capacity 10);
        # doubling c1 overflows that frozen placement, forcing a re-solve
        # that opens the second replica.
        epochs = step_change(base, 3, at=1, factor=2, clients=["c1"])
        result = solve_sequence(epochs, policy="multiple", mode="patch")
        assert result.solutions[0].placement.replicas == frozenset({"root"})
        assert result.solutions[1] is not None
        assert result.stats[1].strategy == "solved"
        assert "patch failed" in result.stats[1].notes
        assert result.solutions[1].placement.replicas == frozenset({"root", "a"})

    def test_patch_respects_qos(self):
        tree = generate_tree(size=40, target_load=0.4, seed=53, qos_hops=(2, 5))
        base = replica_cost_problem(tree, constraints=ConstraintSet.qos_distance())
        epochs = rate_churn(base, 8, churn=0.2, seed=11)
        result = solve_sequence(epochs, policy="multiple", mode="patch")
        for problem, solution in zip(epochs, result.solutions):
            if solution is not None:
                assert_valid(problem, solution)

    def test_patch_single_server_policies(self):
        tree = generate_tree(size=40, target_load=0.25, seed=54)
        base = replica_counting_problem(tree)
        epochs = rate_churn(base, 8, churn=0.15, magnitude=0.3, seed=12)
        for policy in ("closest", "upwards"):
            result = solve_sequence(epochs, policy=policy, mode="patch")
            for problem, solution in zip(epochs, result.solutions):
                if solution is not None:
                    assert_valid(problem, solution, policy=Policy.parse(policy))


# --------------------------------------------------------------------------- #
# CLI and churn campaign
# --------------------------------------------------------------------------- #
class TestDynamicCLI:
    @pytest.fixture
    def tree_file(self, tmp_path):
        tree = generate_tree(size=30, target_load=0.4, seed=61)
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        return str(path)

    def test_churn_trajectory_run(self, tree_file, capsys):
        code = cli_main(
            ["dynamic", tree_file, "--epochs", "5", "--seed", "3", "--simulate"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "churn trajectory" in out
        assert "epoch   0" in out and "epoch   4" in out
        assert "Replay:" in out

    def test_patch_mode_and_step_trajectory(self, tree_file, capsys):
        code = cli_main(
            [
                "dynamic",
                tree_file,
                "--trajectory",
                "step",
                "--at",
                "2",
                "--factor",
                "1.2",
                "--epochs",
                "4",
                "--mode",
                "patch",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0 and "step trajectory" in out

    def test_missing_tree_errors(self, capsys):
        assert cli_main(["dynamic"]) == 1
        assert "required" in capsys.readouterr().err

    def test_trajectory_mismatched_flags_warn(self, tree_file, capsys):
        code = cli_main(
            ["dynamic", tree_file, "--trajectory", "ramp", "--churn", "0.5", "--epochs", "3"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "ramp trajectory ignores --churn" in captured.err

    def test_campaign_prints_tables(self, capsys):
        code = cli_main(
            [
                "dynamic",
                "--campaign",
                "--epochs",
                "4",
                "--trees-per-level",
                "1",
                "--seed",
                "5",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Mean per-epoch cost" in captured.out
        assert "placement stability" in captured.out
        assert "incremental" in captured.out and "patch" in captured.out
        assert "warning" not in captured.err

    def test_campaign_warns_about_ignored_flags(self, tree_file, capsys):
        code = cli_main(
            [
                "dynamic",
                tree_file,
                "--campaign",
                "--simulate",
                "--epochs",
                "3",
                "--trees-per-level",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "ignoring the tree file, --simulate" in captured.err

    def test_bounds_flag_prints_per_epoch_gaps(self, tree_file, capsys):
        code = cli_main(
            ["dynamic", tree_file, "--epochs", "4", "--seed", "9", "--bounds"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bound" in out and "gap" in out
        assert "Bounds:" in out and "epochs bounded" in out

    def test_campaign_bounds_prints_gap_table(self, capsys):
        code = cli_main(
            [
                "dynamic",
                "--campaign",
                "--bounds",
                "--epochs",
                "3",
                "--trees-per-level",
                "1",
                "--seed",
                "5",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Cost relative to the per-epoch LP lower bound" in captured.out

    def test_workers_warns_on_single_trajectory(self, tree_file, capsys):
        code = cli_main(
            ["dynamic", tree_file, "--epochs", "3", "--workers", "2"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "--workers only parallelises --campaign" in captured.err

    def test_campaign_accepts_workers(self, capsys):
        code = cli_main(
            [
                "dynamic",
                "--campaign",
                "--workers",
                "2",
                "--epochs",
                "3",
                "--trees-per-level",
                "1",
                "--seed",
                "5",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Mean per-epoch cost" in captured.out
        assert "warning" not in captured.err


class TestChurnCampaign:
    def test_campaign_records_and_series(self):
        from repro.experiments.harness import ChurnCampaignConfig, run_churn_campaign

        config = ChurnCampaignConfig(
            churn_levels=(0.1, 0.3),
            epochs=4,
            trees_per_level=2,
            size=30,
            seed=77,
        )
        result = run_churn_campaign(config)
        assert len(result.records) == 2 * 2 * 2  # levels x trees x modes
        costs = result.cost_series()
        stability = result.stability_series()
        for mode in config.modes:
            assert set(costs[mode]) == {0.1, 0.3}
            assert all(value >= 0 for value in stability[mode].values())
        assert "churn" in result.cost_table()
        assert "trajectory solves" in result.describe()

    def test_parallel_campaign_matches_sequential(self):
        from dataclasses import asdict

        from repro.experiments.harness import ChurnCampaignConfig, run_churn_campaign

        config = ChurnCampaignConfig(
            churn_levels=(0.1, 0.3),
            epochs=4,
            trees_per_level=2,
            size=30,
            seed=77,
        )
        sequential = run_churn_campaign(config)
        parallel = run_churn_campaign(config, workers=3)
        assert len(parallel.records) == len(sequential.records)

        def normalise(record):
            fields = asdict(record)
            fields.pop("runtime")  # wall times differ, outcomes must not
            return {
                key: None
                if isinstance(value, float) and math.isnan(value)
                else value
                for key, value in fields.items()
            }

        for left, right in zip(sequential.records, parallel.records):
            assert normalise(left) == normalise(right)

    def test_track_bounds_populates_gap_series(self):
        from repro.experiments.harness import ChurnCampaignConfig, run_churn_campaign

        config = ChurnCampaignConfig(
            churn_levels=(0.1,),
            epochs=4,
            trees_per_level=2,
            size=30,
            seed=78,
            track_bounds=True,
        )
        result = run_churn_campaign(config)
        for record in result.records:
            assert math.isfinite(record.mean_bound)
            # Heuristic costs can never beat the LP bound.
            assert record.mean_gap >= 1.0 - 1e-9
        gaps = result.gap_series()
        for mode in config.modes:
            assert set(gaps[mode]) == {0.1}
        assert "churn" in result.gap_table()

    def test_untracked_bounds_stay_nan(self):
        from repro.experiments.harness import ChurnCampaignConfig, run_churn_campaign

        config = ChurnCampaignConfig(
            churn_levels=(0.1,), epochs=3, trees_per_level=1, size=24, seed=79
        )
        result = run_churn_campaign(config)
        assert all(math.isnan(record.mean_gap) for record in result.records)
        assert all(math.isnan(record.mean_bound) for record in result.records)


class TestRegionalChurn:
    @pytest.fixture
    def base(self):
        return replica_counting_problem(
            generate_tree(size=50, target_load=0.4, seed=17)
        )

    def test_epoch_zero_is_base_and_metadata_survives(self, base):
        epochs = regional_churn(base, 5, seed=1)
        assert len(epochs) == 5
        assert epochs[0] is base
        for problem in epochs:
            assert problem.kind is base.kind
            assert problem.constraints == base.constraints

    def test_changes_stay_inside_one_region_subtree(self, base):
        tree = base.tree
        level = 1
        regions = {
            nid: set(tree.subtree_clients(nid))
            for nid in tree.node_ids
            if tree.depth(nid) == level
        }
        epochs = regional_churn(
            base, 6, depth=level, regions_per_epoch=1, magnitude=0.8, seed=2
        )
        for previous, current in zip(epochs, epochs[1:]):
            changed = {
                cid
                for cid in tree.client_ids
                if previous.tree.client(cid).requests
                != current.tree.client(cid).requests
            }
            if not changed:
                continue  # the factor rounded every rate back onto itself
            assert any(changed <= clients for clients in regions.values())

    def test_region_scales_by_one_shared_factor(self, base):
        tree = base.tree
        epochs = regional_churn(base, 2, magnitude=0.9, seed=5)
        previous, current = epochs
        factors = set()
        for cid in tree.client_ids:
            old = previous.tree.client(cid).requests
            new = current.tree.client(cid).requests
            if old != new and old > 0:
                # rounding blurs the exact ratio; bucket it coarsely
                factors.add(round(new / old, 1))
        assert len(factors) <= 3  # one factor, seen through integer rounding

    def test_quiet_probability_one_freezes_the_trajectory(self, base):
        epochs = regional_churn(base, 5, quiet_probability=1.0, seed=3)
        for problem in epochs[1:]:
            for cid in base.tree.client_ids:
                assert (
                    problem.tree.client(cid).requests
                    == base.tree.client(cid).requests
                )

    def test_zero_magnitude_keeps_rates_but_steps_epochs(self, base):
        epochs = regional_churn(base, 4, magnitude=0.0, seed=4)
        for problem in epochs[1:]:
            for cid in base.tree.client_ids:
                assert (
                    problem.tree.client(cid).requests
                    == base.tree.client(cid).requests
                )

    def test_depth_is_clamped_to_the_deepest_internal_level(self, base):
        epochs = regional_churn(base, 3, depth=10_000, magnitude=0.5, seed=6)
        assert len(epochs) == 3

    def test_rates_stay_integral_and_non_negative(self, base):
        epochs = regional_churn(base, 8, magnitude=0.9, seed=7)
        for problem in epochs:
            for client in problem.tree.clients():
                assert client.requests >= 0
                assert client.requests == int(client.requests)

    def test_reproducible_for_a_seed(self, base):
        first = regional_churn(base, 5, seed=8)
        second = regional_churn(base, 5, seed=8)
        assert [p.tree for p in first] == [p.tree for p in second]

    def test_parameter_validation(self, base):
        with pytest.raises(ValueError):
            regional_churn(base, 3, depth=-1)
        with pytest.raises(ValueError):
            regional_churn(base, 3, regions_per_epoch=0)
        with pytest.raises(ValueError):
            regional_churn(base, 3, magnitude=-0.1)
        with pytest.raises(ValueError):
            regional_churn(base, 3, quiet_probability=1.5)

    def test_solves_end_to_end_with_shards(self, base):
        epochs = regional_churn(base, 4, magnitude=0.4, seed=9)
        result = solve_sequence(epochs, shards=2)
        assert len(result.solutions) == len(epochs)
        for problem, solution in zip(epochs, result.solutions):
            if solution is not None:
                assert_valid(problem, solution)
