"""Unit tests for the tree-network data structure."""

from __future__ import annotations

import math

import pytest

from repro.core.exceptions import TreeStructureError
from repro.core.tree import Client, InternalNode, Link, TreeNetwork


def build_sample():
    nodes = [
        InternalNode("root", capacity=10),
        InternalNode("a", capacity=5),
        InternalNode("b", capacity=8, storage_cost=3),
    ]
    clients = [Client("c1", requests=4), Client("c2", requests=2, qos=2)]
    links = [
        Link("a", "root", comm_time=2.0),
        Link("b", "root"),
        Link("c1", "a", comm_time=0.5),
        Link("c2", "b", bandwidth=10),
    ]
    return TreeNetwork(nodes, clients, links)


class TestComponents:
    def test_internal_node_default_storage_cost_equals_capacity(self):
        node = InternalNode("x", capacity=42)
        assert node.storage_cost == 42

    def test_internal_node_explicit_storage_cost(self):
        node = InternalNode("x", capacity=42, storage_cost=7)
        assert node.storage_cost == 7

    def test_internal_node_negative_capacity_rejected(self):
        with pytest.raises(TreeStructureError):
            InternalNode("x", capacity=-1)

    def test_internal_node_negative_cost_rejected(self):
        with pytest.raises(TreeStructureError):
            InternalNode("x", capacity=1, storage_cost=-2)

    def test_client_defaults_to_unbounded_qos(self):
        assert math.isinf(Client("c", requests=1).qos)

    def test_client_negative_requests_rejected(self):
        with pytest.raises(TreeStructureError):
            Client("c", requests=-1)

    def test_client_non_positive_qos_rejected(self):
        with pytest.raises(TreeStructureError):
            Client("c", requests=1, qos=0)

    def test_link_negative_comm_time_rejected(self):
        with pytest.raises(TreeStructureError):
            Link("a", "b", comm_time=-1)

    def test_link_key(self):
        assert Link("a", "b").key == ("a", "b")

    def test_with_storage_cost_returns_new_node(self):
        node = InternalNode("x", capacity=5)
        other = node.with_storage_cost(1.0)
        assert other.storage_cost == 1.0 and node.storage_cost == 5.0


class TestStructureValidation:
    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork(
                [InternalNode("x", capacity=1), InternalNode("x", capacity=2)], [], []
            )

    def test_duplicate_client_ids_rejected(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork(
                [InternalNode("r", capacity=1)],
                [Client("c", requests=1), Client("c", requests=2)],
                [Link("c", "r")],
            )

    def test_id_shared_between_client_and_node_rejected(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork(
                [InternalNode("r", capacity=1), InternalNode("x", capacity=1)],
                [Client("x", requests=1)],
                [Link("x", "r")],
            )

    def test_client_cannot_be_a_parent(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork(
                [InternalNode("r", capacity=1)],
                [Client("c", requests=1), Client("d", requests=1)],
                [Link("c", "r"), Link("d", "c")],
            )

    def test_two_roots_rejected(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork(
                [InternalNode("r1", capacity=1), InternalNode("r2", capacity=1)], [], []
            )

    def test_client_without_parent_rejected(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork([InternalNode("r", capacity=1)], [Client("c", requests=1)], [])

    def test_double_parent_rejected(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork(
                [
                    InternalNode("r", capacity=1),
                    InternalNode("a", capacity=1),
                    InternalNode("b", capacity=1),
                ],
                [],
                [Link("a", "r"), Link("b", "r"), Link("a", "b")],
            )

    def test_self_loop_rejected(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork(
                [InternalNode("r", capacity=1), InternalNode("a", capacity=1)],
                [],
                [Link("a", "a")],
            )

    def test_empty_tree_rejected(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork([], [], [])

    def test_unknown_link_endpoint_rejected(self):
        with pytest.raises(TreeStructureError):
            TreeNetwork([InternalNode("r", capacity=1)], [], [Link("ghost", "r")])


class TestQueries:
    def test_root(self):
        assert build_sample().root == "root"

    def test_parent_and_children(self):
        tree = build_sample()
        assert tree.parent("a") == "root"
        assert tree.parent("root") is None
        assert set(tree.children("root")) == {"a", "b"}
        assert tree.child_nodes("root") == ("a", "b")
        assert tree.child_clients("a") == ("c1",)

    def test_ancestors_order_is_bottom_up(self):
        tree = build_sample()
        assert tree.ancestors("c1") == ("a", "root")
        assert tree.ancestors("root") == ()

    def test_is_ancestor(self):
        tree = build_sample()
        assert tree.is_ancestor("root", "c1")
        assert not tree.is_ancestor("b", "c1")

    def test_depth_and_height(self):
        tree = build_sample()
        assert tree.depth("root") == 0
        assert tree.depth("c1") == 2
        assert tree.height() == 2

    def test_distance_and_latency(self):
        tree = build_sample()
        assert tree.distance("c1", "root") == 2
        assert tree.latency("c1", "root") == pytest.approx(2.5)
        assert tree.distance("c1", "c1") == 0

    def test_distance_to_non_ancestor_raises(self):
        tree = build_sample()
        with pytest.raises(TreeStructureError):
            tree.distance("c1", "b")

    def test_path_links(self):
        tree = build_sample()
        keys = [link.key for link in tree.path_links("c1", "root")]
        assert keys == [("c1", "a"), ("a", "root")]

    def test_subtree_clients_and_requests(self):
        tree = build_sample()
        assert set(tree.subtree_clients("root")) == {"c1", "c2"}
        assert tree.subtree_clients("a") == ("c1",)
        assert tree.subtree_requests("root") == 6
        assert tree.subtree_requests("b") == 2

    def test_subtree_nodes(self):
        tree = build_sample()
        assert set(tree.subtree_nodes("root")) == {"root", "a", "b"}
        assert tree.subtree_nodes("a") == ("a",)

    def test_post_order_children_before_parents(self):
        tree = build_sample()
        order = tree.post_order_nodes()
        assert order.index("a") < order.index("root")
        assert order.index("b") < order.index("root")

    def test_unknown_lookups_raise(self):
        tree = build_sample()
        with pytest.raises(TreeStructureError):
            tree.node("ghost")
        with pytest.raises(TreeStructureError):
            tree.client("ghost")
        with pytest.raises(TreeStructureError):
            tree.children("ghost")
        with pytest.raises(TreeStructureError):
            tree.ancestors("ghost")

    def test_contains_and_kind_checks(self):
        tree = build_sample()
        assert "a" in tree and "c1" in tree and "ghost" not in tree
        assert tree.is_node("a") and not tree.is_node("c1")
        assert tree.is_client("c1") and not tree.is_client("a")

    def test_link_lookup(self):
        tree = build_sample()
        assert tree.link("c1").comm_time == 0.5
        assert tree.link("a", "root").comm_time == 2.0
        with pytest.raises(TreeStructureError):
            tree.link("root")
        with pytest.raises(TreeStructureError):
            tree.link("a", "b")


class TestAggregates:
    def test_size_counts_clients_and_nodes(self):
        assert build_sample().size == 5
        assert len(build_sample()) == 5

    def test_totals_and_load_factor(self):
        tree = build_sample()
        assert tree.total_requests() == 6
        assert tree.total_capacity() == 23
        assert tree.load_factor() == pytest.approx(6 / 23)

    def test_homogeneity(self):
        tree = build_sample()
        assert not tree.is_homogeneous()
        with pytest.raises(TreeStructureError):
            tree.uniform_capacity()

    def test_uniform_capacity_on_homogeneous_tree(self, small_tree):
        assert small_tree.is_homogeneous()
        assert small_tree.uniform_capacity() == 10

    def test_qos_and_bandwidth_flags(self):
        tree = build_sample()
        assert tree.has_qos_bounds()  # c2 has qos=2
        assert tree.has_bandwidth_limits()  # c2 uplink has bandwidth 10

    def test_flags_absent(self, small_tree):
        assert not small_tree.has_qos_bounds()
        assert not small_tree.has_bandwidth_limits()


class TestConversionsAndDunder:
    def test_to_networkx_roundtrip_structure(self):
        tree = build_sample()
        graph = tree.to_networkx()
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert graph.nodes["a"]["capacity"] == 5
        assert graph.nodes["c1"]["kind"] == "client"

    def test_with_nodes_replaces_attributes(self):
        tree = build_sample()
        updated = tree.with_nodes([InternalNode("a", capacity=99)])
        assert updated.node("a").capacity == 99
        assert tree.node("a").capacity == 5  # original untouched

    def test_with_nodes_unknown_id_raises(self):
        with pytest.raises(TreeStructureError):
            build_sample().with_nodes([InternalNode("ghost", capacity=1)])

    def test_with_clients_replaces_attributes(self):
        tree = build_sample()
        updated = tree.with_clients([Client("c1", requests=100)])
        assert updated.client("c1").requests == 100

    def test_equality_and_hash(self):
        assert build_sample() == build_sample()
        assert hash(build_sample()) == hash(build_sample())

    def test_repr_mentions_sizes(self):
        text = repr(build_sample())
        assert "|N|=3" in text and "|C|=2" in text
