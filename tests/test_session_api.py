"""Tests of the session API, shim equivalence and the result protocol.

Three families:

* **Session behaviour** -- cache reuse (index identity, program patching,
  per-epoch memoisation), epoch stepping via ``update()``, engine override,
  simulation, error handling.
* **Shim equivalence** -- the free functions of :mod:`repro.api` are thin
  wrappers over a throwaway :class:`~repro.session.PlacementSession`; these
  tests pin them *bit-identical* (placements, assignments, costs, bound
  values) to direct session calls across policies x constraint sets.
* **Result protocol** -- every result type round-trips through
  ``to_dict()`` / ``to_json()`` / :func:`repro.core.results.result_from_dict`.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import (
    BoundSequenceResult,
    PlacementSession,
    Policy,
    SequenceResult,
    bound_sequence,
    compare_policies,
    lower_bound,
    result_from_dict,
    result_from_json,
    solve,
    solve_sequence,
)
from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError
from repro.core.index import TreeIndex
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.results import decode_float, encode_float
from repro.core.serialization import load_result, save_result
from repro.experiments.harness import (
    CampaignConfig,
    ChurnCampaignConfig,
    run_campaign,
    run_churn_campaign,
)
from repro.session import CompareResult, SolveResult
from repro.workloads.dynamic import rate_churn, step_change
from repro.workloads.generator import generate_tree
from tests.conftest import assert_valid, make_random_problem


def churn_epochs(problem, epochs=6, seed=11, churn=0.25):
    return rate_churn(problem, epochs, churn=churn, quiet_probability=0.3, seed=seed)


def solutions_identical(a, b):
    """Bit-identical placements, assignments and policies (or both None)."""
    if a is None or b is None:
        return a is None and b is None
    return (
        a.placement.replicas == b.placement.replicas
        and dict(a.assignment.items()) == dict(b.assignment.items())
        and a.policy is b.policy
        and a.algorithm == b.algorithm
    )


# --------------------------------------------------------------------------- #
# session behaviour
# --------------------------------------------------------------------------- #
class TestSessionCaching:
    def test_solve_then_bound_share_the_tree_index(self):
        problem = make_random_problem(3, size=60)
        session = PlacementSession(problem)
        session.solve()
        index = TreeIndex.for_tree(session.tree)
        bound = session.bound()
        assert bound.feasible
        # The bound's program was assembled on the very index the solve
        # warmed -- structural arrays are the same objects, not copies.
        program = session.program()
        assert program is not None
        assert program.space.index is index
        assert session.index is index

    def test_repeated_queries_hit_the_epoch_cache(self):
        session = PlacementSession(make_random_problem(4, size=40))
        first = session.solve()
        again = session.solve()
        assert again is first
        b1 = session.bound()
        b2 = session.bound()
        assert b2 is b1
        assert session.stats.solves == 1
        assert session.stats.bounds == 1
        assert session.stats.solve_cache_hits == 1
        assert session.stats.bound_cache_hits == 1

    def test_rate_only_update_patches_the_program(self):
        problem = make_random_problem(5, size=60)
        session = PlacementSession(problem)
        session.solve()
        before = session.bound()
        program_before = session.program()
        client = session.tree.client_ids[0]
        session.update(requests={client: problem.requests(client) + 3.0})
        after = session.bound()
        program_after = session.program()
        assert after.stats.strategy == "patched"
        assert program_after.shares_structure_with(program_before)
        # The patched bound equals a from-scratch bound of the same epoch.
        assert after.value == lower_bound(session.problem)
        assert before.epoch == 0 and after.epoch == 1

    def test_update_with_requests_preserves_constraints_and_kind(self):
        tree = generate_tree(size=30, target_load=0.3, homogeneous=True, seed=9)
        session = PlacementSession(
            tree,
            constraints=ConstraintSet.qos_distance(),
            kind=ProblemKind.REPLICA_COUNTING,
        )
        client = session.tree.client_ids[0]
        session.update(requests={client: 2.0})
        assert session.problem.constraints.has_qos
        assert session.problem.kind is ProblemKind.REPLICA_COUNTING

    def test_update_requires_exactly_one_argument(self):
        session = PlacementSession(make_random_problem(6))
        with pytest.raises(ValueError):
            session.update()
        with pytest.raises(ValueError):
            session.update(make_random_problem(6), requests={})

    def test_update_with_instance_applies_session_coercion(self):
        tree = generate_tree(size=30, target_load=0.3, homogeneous=True, seed=2)
        session = PlacementSession(tree, kind=ProblemKind.REPLICA_COUNTING)
        next_tree = tree.with_requests({tree.client_ids[0]: 1.0})
        session.update(next_tree)
        assert session.problem.kind is ProblemKind.REPLICA_COUNTING
        assert session.epoch == 1

    def test_unchanged_epoch_is_reused(self):
        problem = make_random_problem(7, size=40)
        session = PlacementSession(problem)
        first = session.solve()
        session.update(requests={})  # a quiet epoch: nothing moved
        second = session.solve(on_error="none")
        assert second.stats.strategy == "reused"
        assert solutions_identical(first.solution, second.solution)

    def test_infeasible_solve_raises_like_the_free_function(self):
        from repro.workloads import reference_trees

        problem = reference_trees.figure1_tree("c")
        session = PlacementSession(problem)
        with pytest.raises(InfeasibleError):
            session.solve(policy="closest")
        quiet = session.solve(policy="closest", on_error="none")
        assert quiet.solution is None and not quiet.feasible

    def test_engine_override_matches_default(self):
        problem = make_random_problem(8, size=40)
        fast = PlacementSession(problem).solve()
        dict_engine = PlacementSession(problem, engine="dict").solve()
        assert solutions_identical(fast.solution, dict_engine.solution)

    def test_simulate_runs_on_the_cached_solution(self):
        session = PlacementSession(make_random_problem(9, size=40))
        replay = session.simulate()
        assert session.stats.solves == 1
        assert replay.total_traffic > 0
        # simulate() reuses the epoch cache rather than re-solving.
        session.simulate()
        assert session.stats.solves == 1

    def test_invalid_mode_and_method_rejected(self):
        with pytest.raises(ValueError):
            PlacementSession(make_random_problem(10), mode="magic")
        session = PlacementSession(make_random_problem(10))
        with pytest.raises(ValueError):
            session.bound(method="magic")
        with pytest.raises(ValueError):
            session.solve(on_error="explode")

    def test_trivial_bound_matches_free_function(self):
        problem = make_random_problem(11, size=30)
        session = PlacementSession(problem)
        assert session.bound(method="trivial").value == lower_bound(
            problem, method="trivial"
        )

    def test_scratch_mode_disables_bound_patching(self):
        problem = make_random_problem(12, size=40)
        session = PlacementSession(problem, mode="scratch")
        session.bound()
        client = session.tree.client_ids[0]
        session.update(requests={client: problem.requests(client) + 2.0})
        rebound = session.bound()
        assert rebound.stats.strategy == "built"


# --------------------------------------------------------------------------- #
# shim equivalence: free functions == session calls, bit for bit
# --------------------------------------------------------------------------- #
def shim_problem(name: str) -> ReplicaPlacementProblem:
    """The instance grid of the shim-equivalence tests."""
    if name == "counting":
        return make_random_problem(17, size=40, load=0.35)
    if name == "cost":
        return make_random_problem(17, size=40, load=0.35).with_kind(
            ProblemKind.REPLICA_COST
        )
    if name == "hetero":
        return make_random_problem(18, size=40, load=0.35, homogeneous=False)
    if name == "qos":
        problem = make_random_problem(20, size=40, load=0.3, qos_hops=(4, 8))
        return problem.with_constraints(ConstraintSet.qos_distance())
    raise ValueError(name)


class TestShimEquivalence:
    @pytest.mark.parametrize("name", ["counting", "cost", "hetero", "qos"])
    @pytest.mark.parametrize("policy", ["closest", "upwards", "multiple"])
    def test_solve_shim(self, name, policy):
        problem = shim_problem(name)
        session = PlacementSession(problem)
        try:
            via_shim = solve(problem, policy=policy)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                session.solve(policy=policy)
            return
        via_session = session.solve(policy=policy).solution
        assert solutions_identical(via_shim, via_session)
        assert_valid(problem, via_shim, policy=Policy.parse(policy))

    @pytest.mark.parametrize("method", ["mixed", "rational", "trivial"])
    def test_lower_bound_shim(self, method):
        problem = make_random_problem(19, size=40)
        session = PlacementSession(problem)
        assert lower_bound(problem, method=method) == session.bound(method=method).value

    def test_compare_shim(self):
        problem = make_random_problem(21, size=40)
        via_shim = compare_policies(problem, bounds=True)
        session = PlacementSession(problem)
        via_session = session.compare(bounds=True)
        assert list(via_shim) == list(via_session)
        for policy in via_shim:
            assert solutions_identical(via_shim[policy], via_session[policy])
        assert via_shim.costs == via_session.costs
        assert via_shim.bound.value == via_session.bound.value
        assert via_shim.gaps() == via_session.gaps()

    def test_compare_remains_mapping_compatible(self):
        results = compare_policies(make_random_problem(22, size=30))
        assert isinstance(results, CompareResult)
        assert set(results) == set(Policy.ordered())
        assert len(results) == 3
        for policy, solution in results.items():
            assert results[policy] is solution
        assert results["multiple"] is results[Policy.MULTIPLE]
        assert results.gaps() == {}  # bounds not requested
        # Mapping semantics for unknown keys: missing, not a parse error.
        assert "bogus" not in results
        assert results.get("bogus", "default") == "default"
        with pytest.raises(KeyError):
            results["bogus"]

    def test_compare_engine_override_is_bit_identical(self):
        problem = make_random_problem(23, size=40)
        default = compare_policies(problem)
        forced = compare_policies(problem, engine="dict")
        for policy in default:
            assert solutions_identical(default[policy], forced[policy])

    @pytest.mark.parametrize("mode", ["incremental", "patch", "scratch"])
    def test_solve_sequence_shim(self, mode):
        problem = make_random_problem(25, size=50)
        epochs = churn_epochs(problem)
        via_shim = solve_sequence(epochs, mode=mode)

        session = None
        solutions = []
        strategies = []
        for epoch in epochs:
            if session is None:
                session = PlacementSession(epoch, mode=mode)
                result = session.solve(on_error="none")
            else:
                result = session.update(epoch)
            solutions.append(result.solution)
            strategies.append(result.stats.strategy)

        assert len(via_shim.solutions) == len(solutions)
        for a, b in zip(via_shim.solutions, solutions):
            assert solutions_identical(a, b)
        assert [entry.strategy for entry in via_shim.stats] == strategies

    def test_bound_sequence_shim(self):
        problem = make_random_problem(27, size=50)
        epochs = churn_epochs(problem)
        via_shim = bound_sequence(epochs)

        session = None
        values = []
        strategies = []
        for epoch in epochs:
            if session is None:
                session = PlacementSession(epoch)
            else:
                session.update(epoch, resolve=False)
            entry = session.bound()
            values.append(entry.value)
            strategies.append(entry.stats.strategy)

        assert via_shim.values == values
        assert [entry.strategy for entry in via_shim.stats] == strategies
        assert "patched" in strategies or "reused" in strategies

    def test_sequence_shims_match_scratch_costs(self):
        # The session-backed incremental path stays cost-identical to
        # per-epoch from-scratch solving (the PR 2 guarantee, re-pinned
        # through the new shims).
        problem = make_random_problem(29, size=50)
        epochs = list(step_change(problem, 5, at=2, factor=1.4))
        incremental = solve_sequence(epochs, mode="incremental")
        scratch = solve_sequence(epochs, mode="scratch")
        assert incremental.costs == scratch.costs


# --------------------------------------------------------------------------- #
# result protocol round-trips
# --------------------------------------------------------------------------- #
class TestResultProtocol:
    def test_float_encoding_bijection(self):
        values = [None, 0.0, 1.5, math.inf, -math.inf, math.nan]
        for value in values:
            encoded = encode_float(value)
            json.dumps(encoded)  # JSON-safe
            decoded = decode_float(encoded)
            if value is not None and math.isnan(value):
                assert math.isnan(decoded)
            else:
                assert decoded == value

    def test_solve_result_roundtrip(self):
        session = PlacementSession(make_random_problem(31, size=40))
        result = session.solve()
        clone = result_from_json(result.to_json())
        assert isinstance(clone, SolveResult)
        assert clone == SolveResult(
            epoch=result.epoch,
            policy=result.policy,
            solution=result.solution,
            cost=result.cost,
            stats=result.stats,
        )

    def test_bound_and_compare_roundtrip(self):
        session = PlacementSession(make_random_problem(33, size=40))
        bound = session.bound()
        clone = result_from_json(bound.to_json())
        assert clone.value == bound.value
        assert clone.stats == bound.stats

        comparison = session.compare(bounds=True)
        ct = result_from_json(comparison.to_json())
        assert ct.costs == comparison.costs
        assert ct.gaps() == comparison.gaps()
        for policy in comparison:
            assert solutions_identical(ct[policy], comparison[policy])

    def test_sequence_result_roundtrip(self):
        problem = make_random_problem(35, size=50)
        result = solve_sequence(churn_epochs(problem))
        payload = json.loads(result.to_json())
        clone = result_from_dict(payload)
        assert isinstance(clone, SequenceResult)
        assert clone == result  # dataclass equality: solutions + stats
        assert payload["type"] == "sequence_result"
        assert payload["costs"] == [encode_float(c) for c in result.costs]

    def test_bound_sequence_result_roundtrip(self):
        problem = make_random_problem(37, size=50)
        result = bound_sequence(churn_epochs(problem))
        clone = result_from_json(result.to_json())
        assert isinstance(clone, BoundSequenceResult)
        assert clone == result
        assert clone.values == result.values
        assert clone.strategy_counts() == result.strategy_counts()

    def test_infeasible_epochs_roundtrip(self):
        # Overload a tiny tree so some epochs are infeasible: Nones and inf
        # bounds must survive the JSON round-trip.
        problem = make_random_problem(39, size=30, load=0.9)
        epochs = list(step_change(problem, 4, at=1, factor=4.0))
        solved = solve_sequence(epochs)
        bounds = bound_sequence(epochs)
        assert result_from_json(solved.to_json()) == solved
        clone = result_from_json(bounds.to_json())
        assert clone == bounds
        if math.inf in bounds.values:
            assert math.inf in clone.values

    def test_campaign_result_roundtrip(self):
        config = CampaignConfig(
            trees_per_lambda=1, size_range=(15, 25), lambdas=(0.2, 0.6)
        )
        result = run_campaign(config)
        clone = result_from_json(result.to_json())
        assert clone.config == result.config
        assert clone.records == result.records
        assert clone.success_table() == result.success_table()
        assert clone.relative_cost_table() == result.relative_cost_table()

    def test_churn_campaign_result_roundtrip(self):
        config = ChurnCampaignConfig(
            churn_levels=(0.1,), epochs=3, trees_per_level=1, size=25
        )
        result = run_churn_campaign(config)
        clone = result_from_json(result.to_json())
        assert clone.config == result.config
        assert len(clone.records) == len(result.records)
        for ours, theirs in zip(result.records, clone.records):
            assert ours.mode == theirs.mode
            assert ours.mean_cost == theirs.mean_cost
            assert ours.strategies == theirs.strategies
            assert math.isnan(theirs.mean_gap) == math.isnan(ours.mean_gap)
        assert clone.cost_table() == result.cost_table()

    def test_save_and_load_result_file(self, tmp_path):
        problem = make_random_problem(41, size=40)
        result = solve_sequence(churn_epochs(problem, epochs=4))
        path = save_result(result, tmp_path / "sequence.json")
        assert load_result(path) == result

    def test_unknown_payload_type_rejected(self):
        with pytest.raises(ValueError):
            result_from_dict({"type": "not-a-result"})

    def test_describe_is_implemented_everywhere(self):
        problem = make_random_problem(43, size=40)
        session = PlacementSession(problem)
        objects = [
            session.solve(),
            session.bound(),
            session.compare(),
            solve_sequence(churn_epochs(problem, epochs=3)),
            bound_sequence(churn_epochs(problem, epochs=3)),
        ]
        for obj in objects:
            text = obj.describe()
            assert isinstance(text, str) and text
