"""Dedicated coverage of :mod:`repro.simulation.request_flow`.

Previously the flow simulation was only exercised indirectly through
``test_extensions``; this suite pins the per-policy accounting, the
saturated-link detection and the edge cases fixed in PR 2 (zero-amount
pairs, capacity-0 links, empty assignments), plus the time-stepped
sequence replay.
"""

from __future__ import annotations

import math

import pytest

from repro.api import solve, solve_sequence
from repro.core.builder import TreeBuilder
from repro.core.policies import Policy
from repro.core.problem import replica_cost_problem, replica_counting_problem
from repro.core.solution import Assignment, Placement, Solution
from repro.simulation import (
    FlowSimulation,
    SequenceFlowSimulation,
    simulate_sequence,
    simulate_solution,
)
from repro.workloads import generate_tree, rate_churn, step_change


def make_solution(policy, placement, amounts):
    """A hand-built solution (bypasses heuristics for precise accounting)."""
    return Solution(
        placement=Placement(placement),
        assignment=Assignment(amounts),
        policy=Policy.parse(policy),
        algorithm="hand",
    )


@pytest.fixture
def chain_problem():
    """top -- mid -- low -- c (6 requests); comm times 1 except low-c = 2."""
    tree = (
        TreeBuilder()
        .add_node("top", capacity=10)
        .add_node("mid", capacity=10, parent="top")
        .add_node("low", capacity=10, parent="mid")
        .add_client("c", requests=6, parent="low", comm_time=2.0)
        .build()
    )
    return replica_cost_problem(tree)


# --------------------------------------------------------------------------- #
# per-policy latency / traffic accounting
# --------------------------------------------------------------------------- #
class TestAccounting:
    def test_single_server_latency_and_traffic(self, chain_problem):
        solution = make_solution("upwards", ["mid"], {("c", "mid"): 6})
        sim = simulate_solution(chain_problem, solution)
        # path c -> mid: comm 2 + 1 = 3, hops 2.
        assert sim.client_latency["c"] == pytest.approx(3.0)
        assert sim.mean_latency == pytest.approx(3.0)
        assert sim.max_latency == pytest.approx(3.0)
        assert sim.total_traffic == pytest.approx(12.0)  # 6 requests * 2 hops
        assert sim.server_load == {"mid": 6.0}
        assert sim.server_utilisation["mid"] == pytest.approx(0.6)

    def test_multiple_split_weights_latency_by_amount(self, chain_problem):
        solution = make_solution(
            "multiple", ["low", "top"], {("c", "low"): 4, ("c", "top"): 2}
        )
        sim = simulate_solution(chain_problem, solution)
        # 4 requests at latency 2 (1 hop), 2 requests at latency 4 (3 hops).
        assert sim.client_latency["c"] == pytest.approx((4 * 2 + 2 * 4) / 6)
        assert sim.mean_latency == pytest.approx((4 * 2 + 2 * 4) / 6)
        assert sim.max_latency == pytest.approx(4.0)
        assert sim.total_traffic == pytest.approx(4 * 1 + 2 * 3)
        assert sim.link_flow[("c", "low")] == pytest.approx(6.0)
        assert sim.link_flow[("low", "mid")] == pytest.approx(2.0)
        assert sim.link_flow[("mid", "top")] == pytest.approx(2.0)

    def test_closest_serves_at_lowest_replica(self):
        tree = generate_tree(size=30, target_load=0.2, seed=5)
        problem = replica_counting_problem(tree)
        solution = solve(problem, policy="closest")
        sim = simulate_solution(problem, solution)
        assert sum(sim.server_load.values()) == pytest.approx(tree.total_requests())
        # Every client is served by exactly one replica under Closest, so the
        # per-client latency equals the latency to that server.
        for client_id, server_id in (
            (c, s) for (c, s) in dict(solution.assignment.items())
        ):
            assert sim.client_latency[client_id] == pytest.approx(
                tree.latency(client_id, server_id)
            )

    def test_flow_conservation_per_policy(self):
        tree = generate_tree(size=40, target_load=0.2, seed=13)
        problem = replica_counting_problem(tree)
        for policy in ("closest", "upwards", "multiple"):
            solution = solve(problem, policy=policy)
            sim = simulate_solution(problem, solution)
            assert sum(sim.server_load.values()) == pytest.approx(tree.total_requests())
            # Each client's uplink carries exactly its non-locally-served load.
            for (client_id, server_id), amount in solution.assignment.items():
                assert sim.link_flow[(client_id, tree.parent(client_id))] >= amount - 1e-9


# --------------------------------------------------------------------------- #
# saturation detection
# --------------------------------------------------------------------------- #
class TestSaturation:
    def make_problem(self, bandwidth):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=50)
            .add_node("mid", capacity=5, parent="root", bandwidth=bandwidth)
            .add_client("c", requests=10, parent="mid")
            .build()
        )
        return replica_cost_problem(tree)

    def test_saturated_link_detected(self):
        problem = self.make_problem(bandwidth=5)
        solution = make_solution(
            "multiple", ["mid", "root"], {("c", "mid"): 5, ("c", "root"): 5}
        )
        sim = simulate_solution(problem, solution)
        assert sim.link_utilisation[("mid", "root")] == pytest.approx(1.0)
        assert ("mid", "root") in sim.saturated_links

    def test_below_threshold_not_saturated(self):
        problem = self.make_problem(bandwidth=20)
        solution = make_solution(
            "multiple", ["mid", "root"], {("c", "mid"): 5, ("c", "root"): 5}
        )
        sim = simulate_solution(problem, solution)
        assert sim.link_utilisation[("mid", "root")] == pytest.approx(0.25)
        assert sim.saturated_links == []

    def test_zero_bandwidth_link_with_flow_reports_inf(self):
        """Regression: capacity-0 links carrying flow reported 0% utilisation."""
        problem = self.make_problem(bandwidth=0)
        solution = make_solution(
            "multiple", ["mid", "root"], {("c", "mid"): 5, ("c", "root"): 5}
        )
        sim = simulate_solution(problem, solution)
        assert math.isinf(sim.link_utilisation[("mid", "root")])
        assert ("mid", "root") in sim.saturated_links

    def test_zero_bandwidth_link_without_flow_is_idle(self):
        problem = self.make_problem(bandwidth=0)
        solution = make_solution("multiple", ["mid"], {("c", "mid"): 10})
        sim = simulate_solution(problem, solution)
        assert sim.link_utilisation[("mid", "root")] == 0.0
        assert sim.saturated_links == []

    def test_infinite_bandwidth_link_never_saturates(self, chain_problem):
        solution = make_solution("upwards", ["top"], {("c", "top"): 6})
        sim = simulate_solution(chain_problem, solution)
        assert all(value == 0.0 for value in sim.link_utilisation.values())
        assert sim.saturated_links == []


# --------------------------------------------------------------------------- #
# fixed edge cases
# --------------------------------------------------------------------------- #
class TestEdgeCases:
    def test_zero_amount_pairs_excluded_from_latency_stats(self, chain_problem):
        """Regression: empty splits inflated max latency / client averages."""
        solution = make_solution("multiple", ["low", "top"], {("c", "low"): 6})
        # Inject a zero-amount pair the way a mutated/deserialised assignment
        # could carry one (the constructor itself strips zeros).
        solution.assignment._amounts[("c", "top")] = 0.0
        sim = simulate_solution(chain_problem, solution)
        assert sim.max_latency == pytest.approx(2.0)  # not 4.0 via the root
        assert sim.client_latency["c"] == pytest.approx(2.0)
        assert sim.total_traffic == pytest.approx(6.0)

    def test_empty_assignment_is_safe(self, chain_problem):
        solution = make_solution("multiple", [], {})
        sim = simulate_solution(chain_problem, solution)
        assert sim.hottest_server() == (None, 0.0)
        assert sim.mean_latency == 0.0 and sim.max_latency == 0.0
        assert "no assigned requests" in sim.summary()

    def test_zero_capacity_server_reports_inf_utilisation(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=10)
            .add_node("dead", capacity=0, parent="root")
            .add_client("c", requests=2, parent="dead")
            .build()
        )
        problem = replica_cost_problem(tree)
        solution = make_solution("multiple", ["dead"], {("c", "dead"): 2})
        sim = simulate_solution(problem, solution)
        assert math.isinf(sim.server_utilisation["dead"])


# --------------------------------------------------------------------------- #
# time-stepped sequence replay
# --------------------------------------------------------------------------- #
class TestSequenceReplay:
    def test_replay_matches_per_epoch_simulation(self):
        tree = generate_tree(size=40, target_load=0.4, seed=21)
        base = replica_counting_problem(tree)
        epochs = rate_churn(base, 6, churn=0.2, seed=3)
        result = solve_sequence(epochs, policy="multiple")
        replay = simulate_sequence(epochs, result.solutions)
        assert len(replay.epochs) == 6
        for problem, solution, sim in zip(epochs, result.solutions, replay.epochs):
            expected = simulate_solution(problem, solution)
            assert sim.server_load == expected.server_load
            assert sim.mean_latency == pytest.approx(expected.mean_latency)

    def test_unsolved_epochs_are_carried_through(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=10)
            .add_client("c", requests=5, parent="root")
            .build()
        )
        base = replica_cost_problem(tree)
        # The x10 step makes the tree infeasible from epoch 2 onwards.
        epochs = step_change(base, 4, at=2, factor=10)
        result = solve_sequence(epochs, policy="multiple")
        replay = simulate_sequence(epochs, result.solutions)
        assert replay.unsolved_epochs() == [2, 3]
        assert replay.mean_latency_series()[2] is None
        assert "unsolved" in replay.summary()

    def test_transient_saturation_detected(self):
        tree = (
            TreeBuilder()
            .add_node("root", capacity=50)
            .add_node("mid", capacity=5, parent="root", bandwidth=6)
            .add_client("c", requests=8, parent="mid")
            .build()
        )
        problem = replica_cost_problem(tree)
        quiet = make_solution("multiple", ["mid", "root"], {("c", "mid"): 5, ("c", "root"): 3})
        loud = make_solution("multiple", ["root"], {("c", "root"): 8})
        replay = simulate_sequence([problem, problem, problem], [quiet, loud, loud])
        # Epoch 1 pushes all 8 requests through the bandwidth-6 uplink.
        assert replay.saturation_epochs() == [1, 2]
        assert replay.transient_saturations() == [(1, ("mid", "root"))]
        assert replay.peak_link_utilisation()[1] == pytest.approx(8 / 6)

    def test_length_mismatch_raises(self, chain_problem):
        with pytest.raises(ValueError):
            simulate_sequence([chain_problem], [])
