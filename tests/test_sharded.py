"""Sharded subtree solving: partition -> per-shard solve -> cut reconciliation.

Pins the sharding layer end to end:

* :func:`partition_problem` emits well-formed plans: antichain cuts, regions
  that partition the clients, residual/boundary bookkeeping, QoS budgets
  equal to the clients' global slack at the shard root;
* :meth:`TreeIndex.sliced` equals a fresh per-shard index field for field,
  and the sharded solve path never materialises the whole-tree index;
* :func:`solve_sharded` is **bit-identical** to the whole-tree solve on
  forced instances whose shards are independent (no cut contention), and
  stays ``validate_solution``-feasible with a bounded cost gap on contended
  random instances, across policies x {counting, cost, qos, bandwidth};
* a sharded :class:`PlacementSession` re-solves exactly one shard after a
  single-shard rate change (asserted through per-region resolver stats).
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.portfolio import portfolio_solve
from repro.algorithms.sharded import solve_sharded, stitch_solutions
from repro.core.builder import TreeBuilder
from repro.core.constraints import ConstraintSet
from repro.core.exceptions import InfeasibleError
from repro.core.index import TreeIndex
from repro.core.partition import choose_cut, partition_problem
from repro.core.policies import Policy
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.session import PlacementSession
from repro.workloads.generator import GeneratorConfig, TreeGenerator

from tests.conftest import assert_valid, make_random_problem

POLICIES = (Policy.CLOSEST, Policy.UPWARDS, Policy.MULTIPLE)

W = 10.0


def forced_problem(variant: str, branches: int = 3):
    """An instance whose unique optimum is forced, shard by shard.

    ``branches`` subtrees hang off the root, each a node ``b{i}`` whose
    capacity exactly equals its clients' demand; one extra client at the
    root consumes the root's entire capacity.  Every feasible solution must
    replicate on the root and on every branch node and route each client to
    its parent -- so the whole-tree solve and the sharded solve (cut at the
    branch nodes) must agree **bit for bit**.  ``variant`` selects the cost
    mode / constraint family of the cross-validation matrix.
    """
    qos = variant == "qos"
    bandwidth = variant == "bandwidth"
    builder = TreeBuilder()
    if variant == "cost":
        builder.add_node("root", capacity=W, storage_cost=7.0)
    else:
        builder.add_node("root", capacity=W)
    builder.add_client(
        "top",
        requests=W,
        parent="root",
        qos=1 if qos else math.inf,
        bandwidth=W if bandwidth else math.inf,
    )
    for i in range(branches):
        if variant == "cost":
            builder.add_node(
                f"b{i}", capacity=W, storage_cost=5.0 + i, parent="root",
                bandwidth=0.5 if bandwidth else math.inf,
            )
        else:
            builder.add_node(
                f"b{i}", capacity=W, parent="root",
                bandwidth=0.5 if bandwidth else math.inf,
            )
        for j, rate in enumerate((6.0, 4.0)):
            builder.add_client(
                f"c{i}_{j}",
                requests=rate,
                parent=f"b{i}",
                qos=1 if qos else math.inf,
                bandwidth=rate if bandwidth else math.inf,
            )
    tree = builder.build()
    if variant == "counting":
        kind, constraints = ProblemKind.REPLICA_COUNTING, ConstraintSet.none()
    elif variant == "cost":
        kind, constraints = ProblemKind.REPLICA_COST, ConstraintSet.none()
    elif variant == "qos":
        kind, constraints = ProblemKind.REPLICA_COST, ConstraintSet.qos_distance()
    else:  # bandwidth
        kind, constraints = ProblemKind.REPLICA_COST, ConstraintSet(
            enforce_bandwidth=True
        )
    problem = ReplicaPlacementProblem(
        tree=tree, kind=kind, constraints=constraints, name=f"forced[{variant}]"
    )
    cut = tuple(f"b{i}" for i in range(branches))
    return problem, cut


# --------------------------------------------------------------------------- #
# partitioning
# --------------------------------------------------------------------------- #
class TestPartition:
    def test_regions_partition_the_clients(self):
        problem = make_random_problem(11, size=80, load=0.4)
        plan = partition_problem(problem, shards=4)
        tree = problem.tree
        seen = []
        for shard in plan.shards:
            assert shard.root != tree.root
            assert shard.root in tree.node_ids
            seen.extend(shard.clients)
        seen.extend(plan.residual.tree.client_ids)
        assert sorted(map(repr, seen)) == sorted(map(repr, tree.client_ids))
        # region_of agrees with the shard membership
        for index, shard in enumerate(plan.shards):
            for cid in shard.clients:
                assert plan.region_of(cid) == index
        for cid in plan.residual.tree.client_ids:
            assert plan.region_of(cid) == len(plan.shards)

    def test_cut_is_an_antichain(self):
        problem = make_random_problem(3, size=100, load=0.4)
        plan = partition_problem(problem, shards=5)
        tree = problem.tree
        roots = [shard.root for shard in plan.shards]
        for a in roots:
            for b in roots:
                if a != b:
                    assert a not in tree.ancestors(b)

    def test_demand_and_capacity_bookkeeping(self):
        problem = make_random_problem(7, size=60, load=0.5)
        plan = partition_problem(problem, shards=3)
        tree = problem.tree
        for shard in plan.shards:
            assert shard.demand == pytest.approx(tree.subtree_requests(shard.root))
            expected_capacity = sum(
                tree.node(nid).capacity for nid in shard.problem.tree.node_ids
            )
            assert shard.capacity == pytest.approx(expected_capacity)
            assert shard.contended == (shard.demand > shard.capacity)

    def test_explicit_cut_and_validation_errors(self):
        problem = make_random_problem(5, size=60, load=0.4)
        tree = problem.tree
        cut = choose_cut(tree, 3)
        plan = partition_problem(problem, cut=cut)
        assert [shard.root for shard in plan.shards] == list(cut)
        with pytest.raises(ValueError):
            partition_problem(problem)  # neither spec
        with pytest.raises(ValueError):
            partition_problem(problem, shards=2, cut=cut)  # both specs
        with pytest.raises(ValueError):
            partition_problem(problem, cut=[tree.root])  # root is not cuttable
        with pytest.raises(ValueError):
            partition_problem(problem, cut=[cut[0], cut[0]])  # duplicate
        child = None
        for nid in tree.node_ids:
            if cut[0] in tree.ancestors(nid):
                child = nid
                break
        if child is not None:
            with pytest.raises(ValueError):
                partition_problem(problem, cut=[cut[0], child])  # nested

    def test_boundary_budgets_keep_global_slack(self):
        problem, cut = forced_problem("qos")
        plan = partition_problem(problem, cut=cut)
        for shard in plan.shards:
            for cid in shard.clients:
                # qos=1 hop, the shard root is exactly 1 hop away: no slack.
                assert shard.boundary_budget(cid) == pytest.approx(0.0)
        unbounded, _ = forced_problem("counting")
        plan = partition_problem(unbounded, cut=cut)
        for shard in plan.shards:
            for cid in shard.clients:
                assert shard.boundary_budget(cid) == math.inf

    def test_shard_problems_preserve_structure(self):
        problem = make_random_problem(13, size=70, load=0.4)
        plan = partition_problem(problem, shards=3)
        for shard in plan.shards:
            sub = shard.problem.tree
            assert sub.root == shard.root
            for cid in sub.client_ids:
                assert problem.tree.client(cid).requests == sub.client(cid).requests
        assert plan.residual.tree.root == problem.tree.root


# --------------------------------------------------------------------------- #
# sliced indexes
# --------------------------------------------------------------------------- #
_INDEX_FIELDS = tuple(
    name
    for name in TreeIndex.__slots__
    if name not in ("tree", "qos_threshold_cache", "_np_cache")
)


def assert_index_equal(sliced: TreeIndex, fresh: TreeIndex):
    import numpy as np

    for name in _INDEX_FIELDS:
        a, b = getattr(sliced, name), getattr(fresh, name)
        if isinstance(a, np.ndarray):
            assert a.dtype == b.dtype and np.array_equal(a, b), name
        else:
            assert a == b, name


class TestSlicedIndex:
    def test_sliced_equals_fresh_with_source_index(self):
        problem = make_random_problem(42, size=90, load=0.4)
        TreeIndex.for_tree(problem.tree)  # prime the global index
        plan = partition_problem(problem, shards=4)
        for shard in plan.shards:
            sliced = TreeIndex.sliced(shard)
            fresh = TreeIndex(shard.problem.tree)
            assert_index_equal(sliced, fresh)

    def test_sliced_without_source_index_builds_fresh(self):
        problem = make_random_problem(42, size=60, load=0.4)
        plan = partition_problem(problem, shards=3)
        assert problem.tree._index_cache is None
        for shard in plan.shards:
            sliced = TreeIndex.sliced(shard)
            assert_index_equal(sliced, TreeIndex(shard.problem.tree))
        # building shard indexes must not touch the whole-tree index
        assert problem.tree._index_cache is None

    def test_sliced_is_cached_like_for_tree(self):
        problem = make_random_problem(9, size=60, load=0.4)
        plan = partition_problem(problem, shards=2)
        shard = plan.shards[0]
        assert TreeIndex.sliced(shard) is TreeIndex.sliced(shard)
        assert TreeIndex.sliced(shard) is TreeIndex.for_tree(shard.problem.tree)


# --------------------------------------------------------------------------- #
# cross-validation: sharded vs whole-tree
# --------------------------------------------------------------------------- #
VARIANTS = ("counting", "cost", "qos", "bandwidth")


class TestIndependentShardsBitIdentical:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_forced_instance_matches_whole_tree(self, policy, variant):
        problem, cut = forced_problem(variant)
        whole = portfolio_solve(problem, policy=policy)
        sharded = solve_sharded(problem, policy=policy, shards=cut)
        assert sharded.placement == whole.placement
        assert dict(sharded.assignment.items()) == dict(whole.assignment.items())
        assert sharded.cost(problem) == whole.cost(problem)
        assert_valid(problem, sharded, policy=policy)
        assert sharded.metadata["strategy"] == "independent"

    @pytest.mark.parametrize("policy", POLICIES)
    def test_one_shard_special_case_is_whole_tree(self, policy):
        problem, _ = forced_problem("cost")
        whole = portfolio_solve(problem, policy=policy)
        trivial = solve_sharded(problem, policy=policy, shards=1)
        assert trivial.placement == whole.placement
        assert dict(trivial.assignment.items()) == dict(whole.assignment.items())
        assert trivial.algorithm == whole.algorithm

    def test_sharded_solve_never_builds_the_global_index(self):
        problem = make_random_problem(31, size=80, load=0.4)
        assert problem.tree._index_cache is None
        solution = solve_sharded(problem, shards=4)
        assert solution is not None
        assert problem.tree._index_cache is None


def _contended_problem(variant: str, seed: int):
    kwargs = {}
    if variant == "qos":
        kwargs["qos_hops"] = (2, 4)
    if variant == "bandwidth":
        kwargs["link_bandwidth"] = 120.0
    tree = TreeGenerator(seed).generate(
        GeneratorConfig(
            size=60,
            target_load=0.8,
            homogeneous=(variant == "counting"),
            **kwargs,
        )
    )
    if variant == "counting":
        kind, constraints = ProblemKind.REPLICA_COUNTING, ConstraintSet.none()
    elif variant == "qos":
        kind, constraints = ProblemKind.REPLICA_COST, ConstraintSet.qos_distance()
    elif variant == "bandwidth":
        kind, constraints = ProblemKind.REPLICA_COST, ConstraintSet(
            enforce_bandwidth=True
        )
    else:
        kind, constraints = ProblemKind.REPLICA_COST, ConstraintSet.none()
    return ReplicaPlacementProblem(tree=tree, kind=kind, constraints=constraints)


class TestContendedShardsFeasible:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("seed", (2, 12))
    def test_valid_and_bounded_gap(self, policy, variant, seed):
        problem = _contended_problem(variant, seed)
        try:
            whole = portfolio_solve(problem, policy=policy)
        except InfeasibleError:
            whole = None
        try:
            sharded = solve_sharded(problem, policy=policy, shards=3)
        except InfeasibleError:
            sharded = None
        if sharded is not None:
            assert_valid(problem, sharded, policy=policy)
        if whole is not None:
            # the whole-tree fallback guarantees sharded never loses
            # feasibility, and the locality gap stays bounded
            assert sharded is not None
            assert sharded.cost(problem) <= 2.0 * whole.cost(problem) + 1e-9


# --------------------------------------------------------------------------- #
# session threading
# --------------------------------------------------------------------------- #
def _session_problem(seed=11, size=80, load=0.3):
    tree = TreeGenerator(seed).generate(
        GeneratorConfig(size=size, target_load=load, homogeneous=True)
    )
    return ReplicaPlacementProblem(tree=tree, kind=ProblemKind.REPLICA_COST)


class TestShardedSession:
    def test_matches_solve_sharded(self):
        problem = _session_problem()
        session = PlacementSession(problem, shards=4)
        result = session.solve()
        direct = solve_sharded(problem, shards=4)
        assert result.cost == pytest.approx(direct.cost(problem))
        assert_valid(problem, result.solution, policy=session.policy)
        # the sharded session never builds the whole-tree index
        assert problem.tree._index_cache is None

    def test_single_shard_rate_change_resolves_exactly_one_region(self):
        problem = _session_problem()
        session = PlacementSession(problem, shards=4)
        session.solve()
        plan = session.shard_plan
        assert len(plan.shards) >= 2
        target = plan.shards[1]
        cid = target.clients[0]
        old = problem.tree.client(cid).requests
        result = session.update(requests={cid: old + 1.0})
        strategies = result.solution.metadata["shard_strategies"]
        resolved = [
            index
            for index, strategy in enumerate(strategies)
            if strategy not in ("reused", "empty")
        ]
        assert resolved == [1]
        assert result.stats.strategy == "solved"
        assert_valid(session.problem, result.solution, policy=session.policy)

    def test_quiet_epoch_reuses_every_region(self):
        problem = _session_problem()
        session = PlacementSession(problem, shards=3)
        session.solve()
        result = session.update(requests={})
        assert result.stats.strategy == "reused"
        strategies = result.solution.metadata["shard_strategies"]
        assert all(s in ("reused", "empty") for s in strategies)

    def test_structural_update_invalidates_the_plan(self):
        problem = _session_problem()
        session = PlacementSession(problem, shards=3)
        session.solve()
        assert session.shard_plan is not None
        from repro.workloads.dynamic import client_join_leave

        epochs = client_join_leave(problem, 3, join_rate=0.5, leave_rate=0.0, seed=1)
        grown = epochs[-1]
        assert len(grown.tree.client_ids) > len(problem.tree.client_ids)
        result = session.update(grown)
        assert result.solution is not None
        assert_valid(session.problem, result.solution, policy=session.policy)

    def test_shards_one_is_the_whole_tree_path(self):
        problem = _session_problem()
        sharded = PlacementSession(problem, shards=1)
        plain = PlacementSession(problem)
        assert sharded.shard_plan is None
        a = sharded.solve()
        b = plain.solve()
        assert a.solution.placement == b.solution.placement
        assert dict(a.solution.assignment.items()) == dict(
            b.solution.assignment.items()
        )

    def test_solve_sharded_override_flag(self):
        problem = _session_problem()
        session = PlacementSession(problem)
        forced = session.solve(sharded=True)
        assert forced.solution.algorithm.startswith("sharded[")
        plain = session.solve(sharded=False)
        assert not plain.solution.algorithm.startswith("sharded[")

    def test_export_restore_round_trips_shards(self):
        problem = _session_problem()
        session = PlacementSession(problem, shards=3)
        before = session.solve()
        state = session.export_state()
        assert state["shards"] == 3
        restored = PlacementSession.restore_state(state)
        assert restored.shards == 3
        assert restored.solve().cost == pytest.approx(before.cost)

    def test_memory_estimate_counts_built_shards_only(self):
        problem = _session_problem()
        session = PlacementSession(problem, shards=4)
        cold = session.memory_estimate()
        session.solve()
        warm = session.memory_estimate()
        assert warm > cold
        assert problem.tree._index_cache is None

    def test_regional_churn_drives_one_shard_resolves(self):
        from repro.workloads.dynamic import regional_churn

        problem = _session_problem(seed=5, size=60)
        cut = choose_cut(problem.tree, 3)
        epochs = regional_churn(problem, 6, depth=1, magnitude=0.6, seed=3)
        session = PlacementSession(problem, shards=list(cut))
        session.solve()
        for epoch in epochs[1:]:
            result = session.update(epoch)
            assert result.solution is not None
            strategies = result.solution.metadata.get("shard_strategies")
            if strategies is not None:
                resolved = [s for s in strategies if s not in ("reused", "empty")]
                # whole subtrees surge together: at most a couple of regions
                # (the surged shard, plus the residual when the surge lands
                # above every cut node) re-solve per epoch
                assert len(resolved) <= 2
