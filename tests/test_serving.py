"""Serving subsystem tests (:mod:`repro.serving`).

Covers the PR's acceptance criteria head on:

* **protocol fidelity** -- stdio and HTTP round-trips are bit-identical
  (costs, placements, bound values, strategies; wall-clock runtimes
  excluded) to direct :class:`~repro.session.PlacementSession` calls on
  the same problems, across policies x {counting, cost, qos, bandwidth};
* **fingerprints** -- stable under tree rebuild vs ``with_requests`` fork,
  sensitive to every content dimension;
* **pool semantics** -- LRU eviction order, byte budgets, stats
  aggregation across evictions, thread-safe checkout;
* **error envelopes** -- malformed requests of every kind produce tagged
  error replies, never exceptions or tracebacks;
* **snapshots** -- a save/restore cycle preserves warm-cache behaviour:
  repeated queries answer bit-identically from cache and the next
  rate-only ``bound()`` reports strategy ``patched``, not ``built``;
* **SLA-aware update** -- ``resolve="on_saturation"`` keeps clean epochs
  frozen and re-solves violated ones.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict

import pytest

from repro.core.constraints import ConstraintSet
from repro.core.exceptions import SerializationError
from repro.core.problem import ProblemKind, ReplicaPlacementProblem
from repro.core.results import result_from_dict
from repro.core.serialization import (
    problem_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.serving import (
    PoolStats,
    ReproServer,
    SessionPool,
    UnknownSessionError,
    connect,
    problem_fingerprint,
)
from repro.serving.client import ServingError
from repro.serving.server import make_http_server, serve_stdio
from repro.serving.snapshot import restore_pool, save_pool, snapshot_path
from repro.session import BoundResult, PlacementSession, SolveResult
from repro.workloads.generator import GeneratorConfig, TreeGenerator

POLICIES = ("closest", "upwards", "multiple")
KINDS = ("counting", "cost", "qos", "bandwidth")


def make_problem(seed: int, kind: str = "counting", *, size: int = 30):
    """A small instance per constraint family the protocol tests sweep."""
    if kind == "counting":
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(size=size, target_load=0.4)
        )
        return ReplicaPlacementProblem(tree=tree, kind=ProblemKind.REPLICA_COUNTING)
    if kind == "cost":
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(size=size, target_load=0.4, homogeneous=False)
        )
        return ReplicaPlacementProblem(tree=tree, kind=ProblemKind.REPLICA_COST)
    if kind == "qos":
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(size=size, target_load=0.4, qos_hops=(2, 5))
        )
        return ReplicaPlacementProblem(
            tree=tree,
            constraints=ConstraintSet.qos_distance(),
            kind=ProblemKind.REPLICA_COST,
        )
    if kind == "bandwidth":
        tree = TreeGenerator(seed).generate(
            GeneratorConfig(size=size, target_load=0.4, link_bandwidth=200.0)
        )
        return ReplicaPlacementProblem(
            tree=tree,
            constraints=ConstraintSet(enforce_bandwidth=True),
            kind=ProblemKind.REPLICA_COST,
        )
    raise ValueError(kind)


def canonical(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A reply payload with wall-clock noise and transport extras removed.

    ``runtime`` fields are the only non-deterministic part of the result
    protocol; ``fingerprint`` is transport metadata the server injects.
    """

    def strip(value):
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items() if k != "runtime"}
        if isinstance(value, list):
            return [strip(item) for item in value]
        return value

    stripped = strip(payload)
    stripped.pop("fingerprint", None)
    return stripped


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #
class TestFingerprint:
    def test_rebuild_is_stable(self):
        problem = make_problem(1, "cost")
        clone = ReplicaPlacementProblem(
            tree=tree_from_dict(tree_to_dict(problem.tree)),
            constraints=problem.constraints,
            kind=problem.kind,
        )
        assert problem_fingerprint(problem) == problem_fingerprint(clone)

    def test_fork_matches_rebuild(self):
        """A with_requests fork and a full rebuild with the same rates agree."""
        problem = make_problem(2, "counting")
        cid = problem.tree.client_ids[0]
        new_rate = problem.tree.client(cid).requests + 3.0
        fork = problem.tree.with_requests({cid: new_rate})
        payload = tree_to_dict(fork)
        rebuilt = tree_from_dict(payload)
        fork_problem = ReplicaPlacementProblem(tree=fork, kind=problem.kind)
        rebuilt_problem = ReplicaPlacementProblem(tree=rebuilt, kind=problem.kind)
        assert problem_fingerprint(fork_problem) == problem_fingerprint(
            rebuilt_problem
        )
        assert problem_fingerprint(fork_problem) != problem_fingerprint(problem)

    def test_fast_path_matches_slow_path(self):
        """Hashing with a resident TreeIndex equals hashing without one."""
        from repro.core.index import TreeIndex

        problem = make_problem(3, "qos")
        clone = ReplicaPlacementProblem(
            tree=tree_from_dict(tree_to_dict(problem.tree)),
            constraints=problem.constraints,
            kind=problem.kind,
        )
        slow = problem_fingerprint(clone)  # no index on the fresh clone
        TreeIndex.for_tree(problem.tree)  # force the fast path
        assert problem_fingerprint(problem) == slow
        # and the fork fast path (shared structural cache) stays consistent
        cid = problem.tree.client_ids[1]
        fork = problem.tree.with_requests({cid: 1.5})
        TreeIndex.for_tree(fork)
        fork_problem = ReplicaPlacementProblem(
            tree=fork, constraints=problem.constraints, kind=problem.kind
        )
        fresh = ReplicaPlacementProblem(
            tree=tree_from_dict(tree_to_dict(fork)),
            constraints=problem.constraints,
            kind=problem.kind,
        )
        assert problem_fingerprint(fork_problem) == problem_fingerprint(fresh)

    def test_sensitive_to_content(self):
        problem = make_problem(4, "counting")
        base = problem_fingerprint(problem)
        assert (
            problem_fingerprint(problem.with_kind(ProblemKind.REPLICA_COST)) != base
        )
        assert (
            problem_fingerprint(
                problem.with_constraints(ConstraintSet.qos_distance())
            )
            != base
        )
        cid = problem.tree.client_ids[0]
        bumped = ReplicaPlacementProblem(
            tree=problem.tree.with_requests(
                {cid: problem.tree.client(cid).requests + 1}
            ),
            kind=problem.kind,
        )
        assert problem_fingerprint(bumped) != base


# --------------------------------------------------------------------------- #
# the pool
# --------------------------------------------------------------------------- #
class TestSessionPool:
    def test_lru_eviction_order(self):
        pool = SessionPool(capacity=2)
        problems = [make_problem(seed, size=20) for seed in (10, 11, 12)]
        keys = []
        for problem in problems:
            with pool.checkout(problem) as entry:
                keys.append(entry.fingerprint)
        # the first problem is the LRU victim
        assert pool.resident_fingerprints() == (keys[1], keys[2])
        # touching the now-LRU second problem protects it
        with pool.checkout(problems[1]):
            pass
        with pool.checkout(make_problem(13, size=20)):
            pass
        assert keys[2] not in pool.resident_fingerprints()
        assert keys[1] in pool.resident_fingerprints()

    def test_unknown_fingerprint_raises(self):
        pool = SessionPool(capacity=2)
        with pytest.raises(UnknownSessionError):
            with pool.checkout(fingerprint="no-such-session"):
                pass  # pragma: no cover

    def test_same_content_shares_a_session(self):
        pool = SessionPool(capacity=4)
        problem = make_problem(14, size=20)
        clone = ReplicaPlacementProblem(
            tree=tree_from_dict(tree_to_dict(problem.tree)), kind=problem.kind
        )
        with pool.checkout(problem) as first:
            first_session = first.session
        with pool.checkout(clone) as second:
            assert second.session is first_session
        stats = pool.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_eviction_hook_and_retired_stats(self):
        evicted = []
        pool = SessionPool(capacity=1, on_evict=(lambda entry: evicted.append(entry),))
        first = make_problem(15, size=20)
        with pool.checkout(first) as entry:
            entry.session.solve()
        solves_before = pool.stats().solves
        with pool.checkout(make_problem(16, size=20)):
            pass
        assert len(evicted) == 1
        assert evicted[0].session.stats.solves == 1
        # the evicted session's counters stay in the lifetime totals
        stats = pool.stats()
        assert stats.evictions == 1
        assert stats.solves == solves_before == 1

    def test_byte_budget_evicts(self):
        pool = SessionPool(capacity=10, max_bytes=1)  # everything is over budget
        with pool.checkout(make_problem(17, size=20)):
            pass
        with pool.checkout(make_problem(18, size=20)):
            pass
        # the budget keeps only the MRU entry resident
        assert len(pool) == 1
        assert pool.stats().evictions == 1

    def test_concurrent_checkout_different_tenants(self):
        pool = SessionPool(capacity=8)
        problems = [make_problem(20 + i, size=20) for i in range(4)]
        errors = []

        def worker(problem):
            try:
                for _ in range(3):
                    with pool.checkout(problem) as entry:
                        entry.session.solve()
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(p,)) for p in problems]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(pool) == len(problems)
        stats = pool.stats()
        assert stats.misses == len(problems)
        assert stats.hits == 2 * len(problems)

    def test_checkout_rechecks_residency_under_lock(self):
        """An entry evicted in the lookup-to-lock window is not handed out."""
        pool = SessionPool(capacity=2)
        problem = make_problem(26, size=20)
        with pool.checkout(problem) as entry:
            first_session = entry.session
            fingerprint = entry.fingerprint
        # Simulate the race: the entry gets evicted after the lookup but
        # before the caller takes its lock.
        original_acquire = pool._acquire
        raced = {"done": False}

        def racing_acquire(problem_arg, fingerprint_arg):
            result = original_acquire(problem_arg, fingerprint_arg)
            if not raced["done"]:
                raced["done"] = True
                with pool._lock:
                    victim = pool._entries.pop(fingerprint)
                    pool._retire_locked(victim)
                    pool._evictions += 1
            return result

        pool._acquire = racing_acquire
        try:
            with pool.checkout(problem) as entry:
                # the retry created a fresh resident session, not the ghost
                assert entry.session is not first_session
                assert pool.resident_fingerprints() == (fingerprint,)
        finally:
            pool._acquire = original_acquire
        # the ghost's counters were retired exactly once
        assert pool.stats().evictions == 1

    def test_pool_stats_round_trip(self):
        pool = SessionPool(capacity=3)
        with pool.checkout(make_problem(25, size=20)) as entry:
            entry.session.solve()
        payload = pool.stats().to_dict()
        clone = result_from_dict(json.loads(json.dumps(payload)))
        assert isinstance(clone, PoolStats)
        assert clone.to_dict() == payload
        assert clone.describe() == pool.stats().describe()


# --------------------------------------------------------------------------- #
# protocol round-trips: stdio and HTTP vs in-process sessions
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def http_endpoint():
    """One shared HTTP server for the round-trip sweep."""
    server = ReproServer(capacity=32)
    httpd = make_http_server(server, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        httpd.shutdown()
        httpd.server_close()


def run_stdio(envelopes):
    """Pipe envelopes through a fresh stdio server; returns reply dicts."""
    import io

    stdin = io.StringIO(
        "".join(json.dumps(envelope) + "\n" for envelope in envelopes)
    )
    stdout = io.StringIO()
    serve_stdio(ReproServer(capacity=8), stdin, stdout)
    return [json.loads(line) for line in stdout.getvalue().splitlines()]


def reference_payloads(problem, policy):
    """What a direct in-process session answers for the protocol sweep."""
    session = PlacementSession(problem)
    solve = session.solve(policy=policy, on_error="none").to_dict()
    bound = session.bound().to_dict()
    compare = session.compare(bounds=False).to_dict()
    return solve, bound, compare


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("policy", POLICIES)
def test_stdio_round_trip_bit_identical(kind, policy):
    problem = make_problem(31, kind)
    payload = problem_to_dict(problem)
    replies = run_stdio(
        [
            {"op": "solve", "problem": payload, "params": {"policy": policy}},
            {"op": "bound", "problem": payload},
            {"op": "compare", "problem": payload},
        ]
    )
    solve, bound, compare = reference_payloads(problem, policy)
    assert canonical(replies[0]) == canonical(solve)
    assert canonical(replies[1]) == canonical(bound)
    assert canonical(replies[2]) == canonical(compare)
    # replies decode into real result objects through the registry
    assert isinstance(result_from_dict(replies[0]), SolveResult)
    assert isinstance(result_from_dict(replies[1]), BoundResult)


@pytest.mark.parametrize("kind", KINDS)
def test_http_round_trip_bit_identical(http_endpoint, kind):
    problem = make_problem(32, kind)
    client = connect(http_endpoint)
    session = client.open(problem)
    solve = session.solve()
    bound = session.bound()
    compare = session.compare()
    reference = PlacementSession(problem)
    assert canonical(solve.to_dict()) == canonical(
        reference.solve(on_error="none").to_dict()
    )
    assert canonical(bound.to_dict()) == canonical(reference.bound().to_dict())
    assert canonical(compare.to_dict()) == canonical(
        reference.compare().to_dict()
    )
    assert isinstance(client.stats(), PoolStats)


def test_remote_update_sequence_matches_in_process(http_endpoint):
    """An epoch stream through HTTP equals the same stream on a session."""
    problem = make_problem(33, "counting")
    client = connect(http_endpoint)
    remote = client.open(problem)
    local = PlacementSession(problem)
    assert canonical(remote.solve().to_dict()) == canonical(
        local.solve(on_error="none").to_dict()
    )
    cids = problem.tree.client_ids
    for step, factor in ((0, 0.5), (1, 1.4), (2, 0.25)):
        cid = cids[step]
        new_rate = problem.tree.client(cid).requests * factor
        remote_result = remote.update(requests={cid: new_rate})
        local_result = local.update(requests={cid: new_rate})
        assert canonical(remote_result.to_dict()) == canonical(
            local_result.to_dict()
        )
        assert remote.fingerprint == problem_fingerprint(local.problem)
    # the remote simulate payload equals the local one
    assert canonical(remote.simulate()) == canonical(local.simulate().to_dict())


def test_remote_update_with_non_string_client_ids():
    """Integer ids survive the wire: rate maps travel in value position."""
    from repro.core.builder import TreeBuilder

    tree = (
        TreeBuilder()
        .add_node(0, capacity=10)
        .add_node(1, capacity=10, parent=0)
        .add_client(100, requests=6, parent=1)
        .add_client(101, requests=5, parent=0)
        .build()
    )
    problem = ReplicaPlacementProblem(tree=tree)
    server = ReproServer(capacity=2)
    remote = connect(server).open(problem)
    local = PlacementSession(problem)
    assert canonical(remote.solve().to_dict()) == canonical(
        local.solve(on_error="none").to_dict()
    )
    remote_step = remote.update(requests={100: 3.0})
    local_step = local.update(requests={100: 3.0})
    assert canonical(remote_step.to_dict()) == canonical(local_step.to_dict())
    assert remote.fingerprint == problem_fingerprint(local.problem)


def test_stdio_fingerprint_readdressing():
    """Fingerprint-only envelopes hit the resident session (no tree re-send)."""
    problem = make_problem(34, "counting")
    payload = problem_to_dict(problem)
    fingerprint = problem_fingerprint(problem)
    replies = run_stdio(
        [
            {"op": "solve", "problem": payload},
            {"op": "solve", "fingerprint": fingerprint},
            {"op": "stats"},
        ]
    )
    assert replies[0] == replies[1]
    stats = result_from_dict(replies[2])
    assert stats.hits == 1 and stats.misses == 1
    assert stats.solve_cache_hits == 1  # second solve came from the cache


# --------------------------------------------------------------------------- #
# error envelopes
# --------------------------------------------------------------------------- #
class TestErrorEnvelopes:
    def codes(self, envelopes):
        server = ReproServer(capacity=2)
        codes = []
        for envelope in envelopes:
            reply = json.loads(server.handle_line(json.dumps(envelope)))
            assert reply["type"] == "error", reply
            assert "message" in reply["error"]
            codes.append(reply["error"]["code"])
        return codes

    def test_malformed_envelopes_map_to_tagged_errors(self):
        problem_payload = problem_to_dict(make_problem(40, size=20))
        codes = self.codes(
            [
                [1, 2, 3],  # not an object
                {"op": "teleport"},  # unknown op
                {"op": "solve"},  # no problem, no fingerprint
                {"op": "solve", "fingerprint": "absent"},  # not resident
                {"op": "solve", "problem": {"bogus": True}},  # no tree inside
                {
                    "op": "solve",
                    "problem": {"tree": problem_payload["tree"], "constraints": "qos"},
                },  # mis-typed nested section
                {"op": "solve", "problem": problem_payload, "params": 7},
                {"op": "update", "problem": problem_payload, "params": {}},
                {
                    "op": "update",
                    "problem": problem_payload,
                    "params": {"requests": {}, "resolve": "sometimes"},
                },
                {
                    "op": "bound",
                    "problem": problem_payload,
                    "params": {"method": "bogus"},
                },
            ]
        )
        assert codes == [
            "bad_request",
            "bad_request",
            "bad_request",
            "unknown_fingerprint",
            "invalid",
            "bad_request",
            "bad_request",
            "bad_request",
            "bad_request",
            "invalid",
        ]

    def test_non_json_line(self):
        server = ReproServer(capacity=2)
        reply = json.loads(server.handle_line("this is not json"))
        assert reply["type"] == "error"
        assert reply["error"]["code"] == "bad_request"

    def test_infeasible_solve_is_a_result_not_an_error(self, chain_tree):
        # total demand exceeds every single server: closest is infeasible
        problem = ReplicaPlacementProblem(tree=chain_tree)
        server = ReproServer(capacity=2)
        reply = server.handle(
            {
                "op": "solve",
                "problem": problem_to_dict(problem),
                "params": {"policy": "closest"},
            }
        )
        assert reply["type"] == "solve_result"
        assert reply["feasible"] is False

    def test_client_raises_serving_error(self):
        server = ReproServer(capacity=2)
        client = connect(server)
        session = client.open(make_problem(41, size=20))
        with pytest.raises(ServingError) as excinfo:
            session.bound(method="bogus")
        assert excinfo.value.code == "invalid"


# --------------------------------------------------------------------------- #
# snapshots
# --------------------------------------------------------------------------- #
class TestSnapshots:
    def warm_server(self, tmp_path, problem):
        server = ReproServer(capacity=4, snapshot_dir=tmp_path)
        client = connect(server)
        session = client.open(problem)
        solve = session.solve()
        bound = session.bound()
        cid = problem.tree.client_ids[0]
        session.update(requests={cid: problem.tree.client(cid).requests * 0.5})
        solve2 = session.solve()
        bound2 = session.bound()
        server.snapshot_all()
        return solve, bound, solve2, bound2, session.fingerprint

    def test_restore_preserves_warm_cache_behaviour(self, tmp_path):
        problem = make_problem(50, "counting")
        *_, solve2, bound2, fingerprint = self.warm_server(tmp_path, problem)

        reborn = ReproServer(capacity=4, snapshot_dir=tmp_path)
        assert reborn.restored == 1
        client = connect(reborn)
        # same-epoch queries answer bit-identically from the restored cache
        # (runtimes included: they are the *persisted* runtimes).
        reply_solve = client.request({"op": "solve", "fingerprint": fingerprint})
        reply_bound = client.request({"op": "bound", "fingerprint": fingerprint})
        assert canonical(reply_solve) == canonical(solve2.to_dict())
        assert canonical(reply_bound) == canonical(bound2.to_dict())
        stats = client.stats()
        assert stats.restored == 1
        assert stats.solve_cache_hits >= 1 and stats.bound_cache_hits >= 1

    def test_restored_bound_patches_instead_of_rebuilding(self, tmp_path):
        """Acceptance criterion: next rate-only bound is 'patched' not 'built'."""
        problem = make_problem(51, "counting")
        self.warm_server(tmp_path, problem)

        pool = SessionPool(capacity=4)
        assert restore_pool(pool, tmp_path) == 1
        entry = pool.entries()[0]
        session = entry.session
        cid = problem.tree.client_ids[1]
        session.update(
            requests={cid: session.problem.tree.client(cid).requests + 2.0},
            resolve=False,
        )
        result = session.bound()
        assert result.stats.strategy == "patched"
        # and the patched bound equals a from-scratch bound on the same epoch
        scratch = PlacementSession(session.problem, mode="scratch").bound()
        assert result.value == scratch.value

    def test_snapshot_written_on_update_and_eviction(self, tmp_path):
        server = ReproServer(capacity=1, snapshot_dir=tmp_path)
        client = connect(server)
        first = make_problem(52, size=20)
        session = client.open(first)
        session.solve()
        cid = first.tree.client_ids[0]
        session.update(requests={cid: first.tree.client(cid).requests * 0.5})
        updated_fingerprint = session.fingerprint
        # updates snapshot eagerly
        assert snapshot_path(tmp_path, updated_fingerprint).exists()
        # a second tenant evicts the first, which flushes its final snapshot
        other = client.open(make_problem(53, size=20))
        other.solve()
        assert server.pool.stats().evictions == 1
        assert snapshot_path(tmp_path, updated_fingerprint).exists()

    def test_update_retires_superseded_snapshot(self, tmp_path):
        """A re-keyed tenant leaves exactly one snapshot, not a stale trail."""
        server = ReproServer(capacity=4, snapshot_dir=tmp_path)
        client = connect(server)
        problem = make_problem(55, size=20)
        session = client.open(problem)
        session.solve()
        cid = problem.tree.client_ids[0]
        for factor in (0.5, 0.75, 1.25):
            session.update(
                requests={cid: problem.tree.client(cid).requests * factor}
            )
        files = list(tmp_path.glob("*.session.json"))
        assert len(files) == 1
        assert files[0] == snapshot_path(tmp_path, session.fingerprint)
        reborn = ReproServer(capacity=4, snapshot_dir=tmp_path)
        assert reborn.restored == 1

    def test_corrupt_snapshots_are_skipped(self, tmp_path, capsys):
        problem = make_problem(54, size=20)
        pool = SessionPool(capacity=4)
        with pool.checkout(problem) as entry:
            entry.session.solve()
        save_pool(pool, tmp_path)
        (tmp_path / f"junk{'.session.json'}").write_text("{not json")
        fresh = SessionPool(capacity=4)
        assert restore_pool(fresh, tmp_path) == 1
        assert "warning" in capsys.readouterr().err

    def test_restore_decodes_only_capacity_newest(self, tmp_path):
        """Boot cost is bounded by the pool, not by the snapshot backlog."""
        import time as _time

        for seed in (56, 57, 58):
            pool = SessionPool(capacity=4)
            with pool.checkout(make_problem(seed, size=20)) as entry:
                entry.session.solve()
            save_pool(pool, tmp_path)
            _time.sleep(0.01)  # distinct mtimes: restore order is by age
        assert len(list(tmp_path.glob("*.session.json"))) == 3
        small = SessionPool(capacity=2)
        assert restore_pool(small, tmp_path) == 2
        resident = {
            entry["fingerprint"] for entry in small.stats().sessions
        }
        newest = {
            problem_fingerprint(make_problem(seed, size=20)) for seed in (57, 58)
        }
        assert resident == newest
        assert small.stats().evictions == 0  # nothing restored just to evict

    def test_non_string_type_tag_is_a_serialization_error(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"type": ["solve_result"]}))
        from repro.core.serialization import load_result

        with pytest.raises(SerializationError) as excinfo:
            load_result(path)
        assert "weird.json" in str(excinfo.value)

    def test_custom_constraints_refuse_serialisation(self, small_tree):
        class Custom(ConstraintSet):
            pass

        problem = ReplicaPlacementProblem(tree=small_tree, constraints=Custom())
        session = PlacementSession(problem)
        with pytest.raises(SerializationError):
            session.export_state()


# --------------------------------------------------------------------------- #
# client resilience
# --------------------------------------------------------------------------- #
def test_client_retries_after_eviction():
    server = ReproServer(capacity=1)
    client = connect(server)
    first = client.open(make_problem(60, size=20))
    baseline = first.solve()
    second = client.open(make_problem(61, size=20))
    second.solve()  # evicts the first tenant
    assert server.pool.stats().evictions == 1
    retried = first.solve()  # transparently re-sends the full problem
    assert canonical(retried.to_dict()) == canonical(baseline.to_dict())
    assert server.pool.stats().evictions == 2


def test_client_mirror_survives_update_then_eviction():
    server = ReproServer(capacity=1)
    client = connect(server)
    problem = make_problem(62, size=20)
    session = client.open(problem)
    session.solve()
    cid = problem.tree.client_ids[0]
    updated = session.update(
        requests={cid: problem.tree.client(cid).requests * 0.5}
    )
    other = client.open(make_problem(63, size=20))
    other.solve()  # evict the updated tenant
    resolved = session.solve()  # re-creates the session at the updated rates
    # The re-created session restarts at epoch 0, but serves the *updated*
    # problem: the client's local mirror kept the rates in step.
    assert resolved.cost == updated.cost
    assert (
        resolved.solution.placement.replicas
        == updated.solution.placement.replicas
    )


def test_remote_instance_update_keeps_open_coercions():
    """update(instance=tree) re-applies the constraints/kind from open()."""
    problem = make_problem(64, "qos")
    server = ReproServer(capacity=2)
    client = connect(server)
    remote = client.open(
        problem.tree, constraints=problem.constraints, kind=problem.kind
    )
    local = PlacementSession(
        problem.tree, constraints=problem.constraints, kind=problem.kind
    )
    assert canonical(remote.solve().to_dict()) == canonical(
        local.solve(on_error="none").to_dict()
    )
    cid = problem.tree.client_ids[0]
    next_tree = problem.tree.with_requests(
        {cid: problem.tree.client(cid).requests * 0.5}
    )
    remote_step = remote.update(next_tree)  # a bare tree, like local update
    local_step = local.update(next_tree)
    assert canonical(remote_step.to_dict()) == canonical(local_step.to_dict())
    # the resident problem still carries the QoS constraints
    assert remote.fingerprint == problem_fingerprint(local.problem)


def test_rekey_leaves_busy_same_content_session_alone():
    """Convergence onto a mid-op session never yanks it (no deadlock/loss)."""
    pool = SessionPool(capacity=4)
    base = make_problem(66, size=20)
    cid = base.tree.client_ids[0]
    bumped = ReplicaPlacementProblem(
        tree=base.tree.with_requests({cid: base.tree.client(cid).requests + 1}),
        kind=base.kind,
    )
    with pool.checkout(base) as busy:  # the base-content session is mid-op
        with pool.checkout(bumped) as entry:
            old_key = entry.fingerprint
            entry.session.update(
                requests={cid: base.tree.client(cid).requests}, resolve=False
            )
            new_key = pool.rekey(entry)
            # the busy session kept its key; ours stayed under the old one
            assert new_key == old_key == entry.fingerprint
        assert busy.fingerprint in pool.resident_fingerprints()
    assert len(pool) == 2
    assert pool.stats().evictions == 0


def test_rekey_displacement_counts_as_eviction():
    """Two tenants converging onto one problem content retire one session."""
    pool = SessionPool(capacity=4)
    base = make_problem(65, size=20)
    cid = base.tree.client_ids[0]
    bumped = ReplicaPlacementProblem(
        tree=base.tree.with_requests({cid: base.tree.client(cid).requests + 1}),
        kind=base.kind,
    )
    with pool.checkout(base):
        pass
    with pool.checkout(bumped) as entry:
        # morph the bumped tenant's epoch back onto the base content
        entry.session.update(
            requests={cid: base.tree.client(cid).requests}, resolve=False
        )
        pool.rekey(entry)
    assert len(pool) == 1
    stats = pool.stats()
    assert stats.evictions == 1
    assert stats.misses == stats.resident + stats.evictions


# --------------------------------------------------------------------------- #
# SLA-aware update
# --------------------------------------------------------------------------- #
class TestSlaAwareUpdate:
    def test_clean_replay_keeps_placement(self):
        problem = make_problem(70, "counting")
        session = PlacementSession(problem)
        before = session.solve()
        cid = problem.tree.client_ids[0]
        result = session.update(
            requests={cid: problem.tree.client(cid).requests * 0.5},
            resolve="on_saturation",
        )
        assert result.stats.strategy == "kept"
        assert result.solution.placement.replicas == before.solution.placement.replicas
        assert result.stats.replicas_added == 0
        assert result.stats.replicas_dropped == 0
        # the kept solution still validates on the new epoch
        from tests.conftest import assert_valid

        assert_valid(session.problem, result.solution, policy=session.policy)

    def test_violating_replay_resolves(self):
        """A surge past server capacity forces a real re-solve."""
        problem = make_problem(71, "counting")
        session = PlacementSession(problem)
        session.solve()
        surge = {
            cid: problem.tree.client(cid).requests * 3.0
            for cid in problem.tree.client_ids
        }
        result = session.update(requests=surge, resolve="on_saturation")
        assert result.stats.strategy != "kept"

    def test_unchanged_epoch_is_kept(self):
        problem = make_problem(72, "counting")
        session = PlacementSession(problem)
        session.solve()
        cid = problem.tree.client_ids[0]
        result = session.update(
            requests={cid: problem.tree.client(cid).requests},
            resolve="on_saturation",
        )
        assert result.stats.strategy == "kept"
        assert result.stats.requests_reassigned == 0

    def test_saturated_link_triggers_resolve(self):
        """A feasible replay that saturates a link still re-solves."""
        from repro.core.builder import TreeBuilder

        def build_problem():
            tree = (
                TreeBuilder()
                .add_node("root", capacity=20)
                .add_node("n1", capacity=20, parent="root")
                .add_client("c1", requests=6, parent="n1", bandwidth=10.0)
                .add_client("c2", requests=8, parent="root")
                .build()
            )
            return ReplicaPlacementProblem(
                tree=tree, constraints=ConstraintSet(enforce_bandwidth=True)
            )

        # c1's uplink carries its full rate whichever replica serves it;
        # bumping 6 -> 9.5 keeps the epoch feasible (9.5 <= bandwidth 10).
        lenient = PlacementSession(build_problem())
        lenient.solve()
        kept = lenient.update(requests={"c1": 9.5}, resolve="on_saturation")
        assert kept.stats.strategy == "kept"  # 95% < default threshold

        strict = PlacementSession(build_problem())
        strict.solve()
        resolved = strict.update(
            requests={"c1": 9.5},
            resolve="on_saturation",
            saturation_threshold=0.9,  # 95% utilisation is now an event
        )
        assert resolved.stats.strategy == "solved"
        assert resolved.feasible

    def test_bad_resolve_mode_rejected(self):
        problem = make_problem(73, size=20)
        session = PlacementSession(problem)
        with pytest.raises(ValueError):
            session.update(requests={}, resolve="sometimes")

    def test_falsy_resolve_values_skip_the_solve(self):
        """0 (and other bool-likes) keep the documented resolve=False path."""
        problem = make_problem(75, size=20)
        session = PlacementSession(problem)
        assert session.update(requests={}, resolve=0) is None
        assert session.stats.solves == 0
        assert session.update(requests={}, resolve=1) is not None

    def test_solve_sequence_resolve_mode(self):
        from repro.api import solve_sequence

        problem = make_problem(74, "counting")
        cid = problem.tree.client_ids[0]
        epochs = [problem]
        tree = problem.tree
        for factor in (0.9, 0.8, 0.7):
            tree = tree.with_requests({cid: problem.tree.client(cid).requests * factor})
            epochs.append(ReplicaPlacementProblem(tree=tree, kind=problem.kind))
        result = solve_sequence(epochs, resolve="on_saturation")
        counts = result.strategy_counts()
        assert counts.get("kept", 0) == 3 and counts.get("solved") == 1
        assert all(solution is not None for solution in result.solutions)
