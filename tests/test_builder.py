"""Unit tests for the fluent tree builder."""

from __future__ import annotations

import math

import pytest

from repro.core.builder import TreeBuilder
from repro.core.exceptions import TreeStructureError


class TestBuilder:
    def test_basic_build(self, small_tree):
        assert small_tree.root == "root"
        assert set(small_tree.client_ids) == {"c1", "c2", "c3"}

    def test_first_node_becomes_root(self):
        tree = TreeBuilder().add_node("r", capacity=1).build()
        assert tree.root == "r"

    def test_second_root_rejected(self):
        builder = TreeBuilder().add_node("r", capacity=1)
        with pytest.raises(TreeStructureError):
            builder.add_node("other", capacity=1)

    def test_duplicate_identifier_rejected(self):
        builder = TreeBuilder().add_node("r", capacity=1)
        with pytest.raises(TreeStructureError):
            builder.add_node("r", capacity=2, parent="r")
        with pytest.raises(TreeStructureError):
            builder.add_client("r", requests=1, parent="r")

    def test_unknown_parent_rejected(self):
        builder = TreeBuilder().add_node("r", capacity=1)
        with pytest.raises(TreeStructureError):
            builder.add_node("a", capacity=1, parent="ghost")
        with pytest.raises(TreeStructureError):
            builder.add_client("c", requests=1, parent="ghost")

    def test_client_cannot_be_parent(self):
        builder = (
            TreeBuilder()
            .add_node("r", capacity=1)
            .add_client("c", requests=1, parent="r")
        )
        with pytest.raises(TreeStructureError):
            builder.add_client("d", requests=1, parent="c")

    def test_build_without_root_rejected(self):
        with pytest.raises(TreeStructureError):
            TreeBuilder().build()

    def test_link_attributes_are_attached(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=1)
            .add_node("a", capacity=1, parent="r", comm_time=5.0, bandwidth=7.0)
            .add_client("c", requests=1, parent="a", comm_time=2.0)
            .build()
        )
        assert tree.link("a").comm_time == 5.0
        assert tree.link("a").bandwidth == 7.0
        assert tree.link("c").comm_time == 2.0
        assert math.isinf(tree.link("c").bandwidth)

    def test_node_metadata_kwargs(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=1, region="eu-west")
            .add_client("c", requests=1, parent="r", tier="gold")
            .build()
        )
        assert tree.node("r").metadata["region"] == "eu-west"
        assert tree.client("c").metadata["tier"] == "gold"

    def test_add_clients_bulk(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=100)
            .add_clients("c", 5, requests=2, parent="r")
            .build()
        )
        assert len(tree.client_ids) == 5
        assert tree.total_requests() == 10
        assert set(tree.client_ids) == {f"c{i}" for i in range(5)}

    def test_add_clients_start_offset(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=100)
            .add_clients("c", 2, requests=1, parent="r", start=3)
            .build()
        )
        assert set(tree.client_ids) == {"c3", "c4"}

    def test_counts_exposed(self):
        builder = (
            TreeBuilder()
            .add_node("r", capacity=1)
            .add_client("c", requests=1, parent="r")
        )
        assert builder.declared_nodes == 1
        assert builder.declared_clients == 1

    def test_qos_and_storage_cost_passthrough(self):
        tree = (
            TreeBuilder()
            .add_node("r", capacity=10, storage_cost=3)
            .add_client("c", requests=1, parent="r", qos=4)
            .build()
        )
        assert tree.node("r").storage_cost == 3
        assert tree.client("c").qos == 4

    def test_fluent_chaining_returns_builder(self):
        builder = TreeBuilder()
        assert builder.add_node("r", capacity=1) is builder
        assert builder.add_client("c", requests=1, parent="r") is builder
