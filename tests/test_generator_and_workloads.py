"""Tests of the random tree generator and request distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.workloads.distributions import (
    heterogeneous_capacities,
    inversion_poisson_arrivals,
    poisson_arrivals,
    sinusoidal_intensity,
    thinned_poisson_arrivals,
    uniform_capacities,
    uniform_requests,
    zipf_requests,
)
from repro.workloads.generator import (
    GeneratorConfig,
    TreeGenerator,
    generate_campaign,
    generate_tree,
    large_tree,
)


class TestDistributions:
    def test_uniform_requests_range(self):
        rng = np.random.default_rng(0)
        values = uniform_requests(rng, 1000, low=2, high=9)
        assert values.min() >= 2 and values.max() <= 9

    def test_uniform_requests_empty(self):
        assert len(uniform_requests(np.random.default_rng(0), 0)) == 0

    def test_zipf_requests_capped(self):
        rng = np.random.default_rng(0)
        values = zipf_requests(rng, 500, cap=100)
        assert values.max() <= 100

    def test_uniform_capacities_constant(self):
        values = uniform_capacities(np.random.default_rng(0), 5, capacity=42)
        assert set(values.tolist()) == {42.0}

    def test_heterogeneous_capacities_from_choices(self):
        values = heterogeneous_capacities(
            np.random.default_rng(0), 200, choices=(10.0, 20.0)
        )
        assert set(values.tolist()) <= {10.0, 20.0}
        assert len(set(values.tolist())) == 2


class TestGeneratorConfig:
    def test_defaults_valid(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size": 2},
            {"target_load": 0.0},
            {"client_fraction": 0.0},
            {"client_fraction": 1.0},
            {"max_children": 0},
            {"client_attachment": "anywhere"},
            {"request_low": 5, "request_high": 2},
            {"link_bandwidth": 0.0},
            {"link_bandwidth": -3.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)

    def test_link_bandwidth_applied_to_every_link(self):
        import math

        from repro.workloads.generator import TreeGenerator

        capped = TreeGenerator(5).generate(
            GeneratorConfig(size=24, target_load=0.4, link_bandwidth=42.0)
        )
        assert all(link.bandwidth == 42.0 for link in capped.links())
        unbounded = TreeGenerator(5).generate(
            GeneratorConfig(size=24, target_load=0.4)
        )
        assert all(math.isinf(link.bandwidth) for link in unbounded.links())


class TestTreeGenerator:
    def test_size_matches_request(self):
        tree = generate_tree(size=50, target_load=0.4, seed=1)
        assert tree.size == 50

    def test_target_load_is_hit(self):
        for load in (0.2, 0.5, 0.8):
            tree = generate_tree(size=60, target_load=load, seed=3)
            assert tree.load_factor() == pytest.approx(load, abs=0.02)

    def test_reproducible_with_seed(self):
        first = generate_tree(size=40, target_load=0.5, seed=99)
        second = generate_tree(size=40, target_load=0.5, seed=99)
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_tree(size=40, target_load=0.5, seed=1)
        second = generate_tree(size=40, target_load=0.5, seed=2)
        assert first != second

    def test_homogeneous_flag(self):
        assert generate_tree(size=40, homogeneous=True, seed=5).is_homogeneous()
        hetero = generate_tree(size=60, homogeneous=False, seed=5)
        assert not hetero.is_homogeneous()

    def test_heterogeneous_capacities_from_choices(self):
        tree = TreeGenerator(7).generate(
            GeneratorConfig(size=60, homogeneous=False, capacity_choices=(10.0, 30.0))
        )
        assert {node.capacity for node in tree.nodes()} <= {10.0, 30.0}

    def test_branching_limit_respected(self):
        tree = TreeGenerator(11).generate(GeneratorConfig(size=80, max_children=2))
        for node_id in tree.node_ids:
            assert len(tree.child_nodes(node_id)) <= 2

    def test_leaf_attachment_keeps_root_client_free(self):
        tree = TreeGenerator(13).generate(
            GeneratorConfig(size=60, client_attachment="spread")
        )
        # With "spread"/"leaves", clients attach below edge nodes only.
        for client_id in tree.client_ids:
            parent = tree.parent(client_id)
            assert len(tree.child_nodes(parent)) == 0

    def test_uniform_attachment_allows_any_node(self):
        tree = TreeGenerator(13).generate(
            GeneratorConfig(size=200, client_attachment="uniform")
        )
        parents = {tree.parent(cid) for cid in tree.client_ids}
        assert any(len(tree.child_nodes(p)) > 0 for p in parents)

    def test_spread_balances_clients_per_leaf(self):
        tree = TreeGenerator(17).generate(
            GeneratorConfig(size=100, client_attachment="spread")
        )
        counts = {}
        for client_id in tree.client_ids:
            parent = tree.parent(client_id)
            counts[parent] = counts.get(parent, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_qos_bounds_drawn_when_requested(self):
        tree = TreeGenerator(19).generate(GeneratorConfig(size=40, qos_hops=(2, 4)))
        for client in tree.clients():
            assert 2 <= client.qos <= 4

    def test_requests_are_integral_and_positive(self):
        tree = generate_tree(size=60, target_load=0.5, seed=23)
        for client in tree.clients():
            assert client.requests == int(client.requests)
            assert client.requests >= 1

    def test_custom_request_sampler(self):
        def constant(rng, count):
            return np.full(count, 5.0)

        tree = TreeGenerator(29).generate(
            GeneratorConfig(size=40, target_load=0.5), request_sampler=constant
        )
        requests = [c.requests for c in tree.clients()]
        assert max(requests) - min(requests) <= 1  # rescaled evenly

    def test_generate_many(self):
        trees = TreeGenerator(31).generate_many(GeneratorConfig(size=30), 3)
        assert len(trees) == 3
        assert len({t.size for t in trees}) == 1


class TestCampaignGeneration:
    def test_generate_campaign_counts(self):
        campaign = generate_campaign(
            lambdas=(0.2, 0.6), trees_per_lambda=3, size_range=(15, 30), seed=1
        )
        assert len(campaign) == 6
        loads = sorted({load for load, _tree in campaign})
        assert loads == [0.2, 0.6]

    def test_generate_campaign_sizes_in_range(self):
        campaign = generate_campaign(
            lambdas=(0.4,), trees_per_lambda=5, size_range=(15, 25), seed=2
        )
        for _load, tree in campaign:
            assert 15 <= tree.size <= 25

    def test_generate_campaign_reproducible(self):
        first = generate_campaign(lambdas=(0.3,), trees_per_lambda=2, size_range=(15, 20), seed=3)
        second = generate_campaign(lambdas=(0.3,), trees_per_lambda=2, size_range=(15, 20), seed=3)
        assert [t for _l, t in first] == [t for _l, t in second]


class TestArrivalProcesses:
    """The IPPP samplers behind the serving load harness."""

    def test_homogeneous_count_and_order(self):
        rng = np.random.default_rng(7)
        times = poisson_arrivals(rng, rate=200.0, horizon=10.0)
        assert np.all(np.diff(times) > 0)
        assert times.min() >= 0 and times.max() < 10.0
        # E[N] = 2000, sd ~ 45: a 5-sigma band keeps this deterministic.
        assert abs(times.size - 2000) < 225

    def test_homogeneous_empty_cases(self):
        rng = np.random.default_rng(0)
        assert poisson_arrivals(rng, 0.0, 10.0).size == 0
        assert poisson_arrivals(rng, 5.0, 0.0).size == 0
        with pytest.raises(ValueError):
            poisson_arrivals(rng, -1.0, 1.0)

    def test_thinning_tracks_piecewise_intensity(self):
        rng = np.random.default_rng(11)

        def intensity(times):
            return np.where(times < 5.0, 10.0, 100.0)

        times = thinned_poisson_arrivals(rng, intensity, 10.0, bound=100.0)
        low = int(np.sum(times < 5.0))
        high = int(np.sum(times >= 5.0))
        # E = 50 vs 500; 5-sigma bands.
        assert abs(low - 50) < 36
        assert abs(high - 500) < 112
        assert np.all(np.diff(times) > 0)

    def test_thinning_rejects_bound_violations(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError, match="exceeds the thinning bound"):
            thinned_poisson_arrivals(
                rng, lambda t: np.full_like(t, 50.0), 5.0, bound=10.0
            )
        with pytest.raises(ValueError, match="negative rate"):
            thinned_poisson_arrivals(
                rng, lambda t: np.full_like(t, -1.0), 5.0, bound=10.0
            )
        with pytest.raises(ValueError, match="bound must be > 0"):
            thinned_poisson_arrivals(
                rng, lambda t: np.zeros_like(t), 5.0, bound=0.0
            )

    def test_inversion_respects_segments(self):
        rng = np.random.default_rng(13)
        times = inversion_poisson_arrivals(
            rng, breakpoints=[0.0, 2.0, 4.0, 6.0], rates=[100.0, 0.0, 50.0]
        )
        assert np.all((times >= 0.0) & (times < 6.0))
        # The zero-rate middle interval must stay empty.
        assert not np.any((times >= 2.0) & (times < 4.0))
        first = int(np.sum(times < 2.0))
        last = int(np.sum(times >= 4.0))
        assert abs(first - 200) < 71   # E = 200, 5 sigma
        assert abs(last - 100) < 50    # E = 100, 5 sigma

    def test_inversion_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="at least two edges"):
            inversion_poisson_arrivals(rng, [0.0], [])
        with pytest.raises(ValueError, match="one rate per interval"):
            inversion_poisson_arrivals(rng, [0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            inversion_poisson_arrivals(rng, [0.0, 0.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValueError, match="rates must be >= 0"):
            inversion_poisson_arrivals(rng, [0.0, 1.0], [-1.0])
        assert inversion_poisson_arrivals(rng, [0.0, 1.0], [0.0]).size == 0

    def test_thinning_and_inversion_agree(self):
        """Both exact samplers see the same piecewise-constant process."""
        edges = [0.0, 1.0, 2.0, 3.0]
        levels = [300.0, 30.0, 150.0]

        def intensity(times):
            spans = np.clip(
                np.searchsorted(edges, times, side="right") - 1, 0, 2
            )
            return np.asarray(levels, dtype=float)[spans]

        thin = thinned_poisson_arrivals(
            np.random.default_rng(5), intensity, 3.0, bound=300.0
        )
        invert = inversion_poisson_arrivals(
            np.random.default_rng(6), edges, levels
        )
        for low, high, expected in ((0, 1, 300), (1, 2, 30), (2, 3, 150)):
            got_thin = int(np.sum((thin >= low) & (thin < high)))
            got_inv = int(np.sum((invert >= low) & (invert < high)))
            sigma = math.sqrt(expected)
            assert abs(got_thin - expected) < 5 * sigma
            assert abs(got_inv - expected) < 5 * sigma

    def test_samplers_reject_trace_shaped_garbage(self):
        """Non-finite inputs fail with a tagged WorkloadError, not numpy noise."""
        from repro.core.exceptions import ReproError, WorkloadError

        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError, match="finite"):
            poisson_arrivals(rng, np.nan, 1.0)
        with pytest.raises(WorkloadError, match="finite"):
            poisson_arrivals(rng, np.inf, 1.0)
        with pytest.raises(WorkloadError, match="finite"):
            poisson_arrivals(rng, 5.0, np.nan)
        with pytest.raises(WorkloadError, match="finite"):
            poisson_arrivals(rng, 5.0, np.inf)
        with pytest.raises(WorkloadError, match="finite"):
            thinned_poisson_arrivals(
                rng, lambda t: np.zeros_like(t), 1.0, bound=np.inf
            )
        with pytest.raises(WorkloadError, match="finite"):
            inversion_poisson_arrivals(rng, [0.0, np.nan, 2.0], [1.0, 1.0])
        with pytest.raises(WorkloadError, match="finite"):
            inversion_poisson_arrivals(rng, [0.0, 1.0], [np.inf])
        # unsorted timestamp edges carry the strictly-increasing message
        with pytest.raises(WorkloadError, match="strictly increasing"):
            inversion_poisson_arrivals(rng, [0.0, 2.0, 1.0], [1.0, 1.0])
        # WorkloadError stays catchable as both ReproError and ValueError
        assert issubclass(WorkloadError, ReproError)
        assert issubclass(WorkloadError, ValueError)

    def test_all_zero_intensity_yields_empty_schedule(self):
        rng = np.random.default_rng(1)
        empty = inversion_poisson_arrivals(
            rng, [0.0, 1.0, 2.0, 3.0], [0.0, 0.0, 0.0]
        )
        assert empty.size == 0

    def test_sinusoidal_intensity_shape(self):
        intensity = sinusoidal_intensity(40.0, burst=0.5, period=2.0)
        times = np.linspace(0.0, 4.0, 1000)
        rates = intensity(times)
        assert rates.min() >= 40.0 * 0.5 - 1e-9
        assert rates.max() <= 40.0 * 1.5 + 1e-9
        assert np.isclose(intensity(np.array([0.5]))[0], 60.0)
        with pytest.raises(ValueError):
            sinusoidal_intensity(-1.0)
        with pytest.raises(ValueError):
            sinusoidal_intensity(1.0, burst=1.5)
        with pytest.raises(ValueError):
            sinusoidal_intensity(1.0, period=0.0)


class TestOrderedSampler:
    def test_select_walks_members_in_ascending_order(self):
        from repro.workloads.generator import _OrderedSampler

        sampler = _OrderedSampler(10)
        for position in (7, 2, 5, 9):
            sampler.add(position)
        assert len(sampler) == 4
        assert [sampler.select(k) for k in range(4)] == [2, 5, 7, 9]
        sampler.discard(5)
        assert 5 not in sampler
        assert [sampler.select(k) for k in range(3)] == [2, 7, 9]
        sampler.add(0)
        assert sampler.select(0) == 0


class TestLargeTree:
    def test_large_tree_hits_the_requested_client_count(self):
        tree = large_tree(2_000, seed=3)
        assert len(tree.client_ids) == 2_000
        # client_fraction=0.9 keeps the internal skeleton thin
        assert len(tree.node_ids) <= 2_000 // 4

    def test_large_tree_is_reproducible(self):
        assert large_tree(1_000, seed=5) == large_tree(1_000, seed=5)

    def test_large_tree_100k_smoke_is_bounded(self):
        """ISSUE acceptance: 10^5 clients build in bounded time/memory."""
        import time

        start = time.perf_counter()
        tree = large_tree(100_000, seed=7)
        elapsed = time.perf_counter() - start
        assert len(tree.client_ids) == 100_000
        assert elapsed < 60.0
        # memory proxy: the ancestor structures stay O(n * depth), far from
        # the quadratic regime a dense pair table would occupy
        depths = [tree.depth(cid) for cid in tree.client_ids[:1000]]
        assert max(depths) < 80
