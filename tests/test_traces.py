"""Trace-driven workloads: ingest, epoch detection, replay, round-trip.

The load-bearing test is the round-trip property pinning the whole
pipeline: sample a synthetic request log from a known epoch trajectory
(``sample_trace``), re-estimate the epoch model from the log alone, and
the boundaries land on the trajectory's grid while per-client rates agree
within Poisson tolerance.  Rate estimates over an epoch of duration ``d``
are Poisson counts divided by ``d``, so their standard deviation is
``sqrt(rate / d)``; the tests allow 5 sigma (plus a 0.5 rounding floor),
generous enough to be seed-stable and tight enough to catch any indexing
or normalisation slip.
"""

from __future__ import annotations

import gzip
import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.exceptions import TraceFormatError, WorkloadError
from repro.core.results import result_from_json
from repro.core.serialization import save_tree
from repro.simulation import simulate_sequence
from repro.workloads.dynamic import as_base_problem, rate_churn, seasonal
from repro.workloads.generator import generate_tree
from repro.workloads.traces import (
    TimeIndexer,
    Trace,
    TraceSummary,
    detect_epochs,
    fixed_epochs,
    load_trace,
    sample_trace,
)


@pytest.fixture(scope="module")
def tree():
    return generate_tree(size=20, seed=7)


def make_trace(times, clients=None, weights=None):
    times = np.asarray(times, dtype=float)
    clients = (
        np.zeros(times.size, dtype=int) if clients is None else np.asarray(clients)
    )
    weights = np.ones(times.size) if weights is None else np.asarray(weights, float)
    ids = tuple(f"c{i}" for i in range(int(clients.max()) + 1 if clients.size else 1))
    return Trace(times, clients, weights, ids)


# --------------------------------------------------------------------------- #
# TimeIndexer
# --------------------------------------------------------------------------- #
class TestTimeIndexer:
    def test_at_slice_counts(self):
        idx = TimeIndexer([0.0, 1.0, 1.0, 2.5, 4.0])
        assert idx.at(-0.1) == -1
        assert idx.at(0.0) == 0
        assert idx.at(1.0) == 2  # last event at-or-before t
        assert idx.at(99.0) == 4
        assert idx.slice(1.0, 2.5) == slice(1, 3)
        assert idx.count(0.0, 4.0) == 4  # half-open: t=4.0 excluded
        assert list(idx.counts([0.0, 1.0, 3.0, 5.0])) == [1, 3, 1]

    def test_rejects_malformed(self):
        with pytest.raises(WorkloadError, match="sorted"):
            TimeIndexer([1.0, 0.5])
        with pytest.raises(WorkloadError, match="finite"):
            TimeIndexer([0.0, np.nan])
        with pytest.raises(WorkloadError, match="strictly increasing"):
            TimeIndexer([0.0, 1.0]).counts([1.0, 1.0])


# --------------------------------------------------------------------------- #
# ingest: parsing and validation
# --------------------------------------------------------------------------- #
class TestIngest:
    def test_csv_with_header_and_weights(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "timestamp,client,weight\n0.5,east,2.0\n1.5,west,1.0\n2.0,east,3.5\n"
        )
        trace = load_trace(path)
        assert trace.events == 3
        assert trace.client_ids == ("east", "west")
        assert trace.total_weight == pytest.approx(6.5)
        assert trace.span == (0.5, 2.0)

    def test_csv_without_header_or_weight(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0.5,east\n1.5,west\n")
        trace = load_trace(path)
        assert trace.events == 2
        assert np.all(trace.weights == 1.0)

    def test_jsonl_field_aliases(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            {"t": 0.1, "client": "a"},
            {"time": 0.2, "client_id": "b", "w": 2.0},
            {"timestamp": 0.3, "client": "a", "weight": 3.0},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n\n")
        trace = load_trace(path)
        assert trace.events == 3
        assert trace.client_ids == ("a", "b")
        assert trace.total_weight == pytest.approx(6.0)

    def test_gzip_transparent_even_mislabelled(self, tmp_path):
        # A gzipped file without the .gz suffix still loads: the opener
        # sniffs the magic bytes, not the name.
        path = tmp_path / "t.csv"
        with gzip.open(path, "wt") as handle:
            handle.write("0.5,east\n1.5,west\n")
        trace = load_trace(path)
        assert trace.events == 2

    def test_bad_csv_row_names_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0.5,east\nnot-a-number,west\n")
        with pytest.raises(TraceFormatError, match="line 2") as excinfo:
            load_trace(path)
        assert excinfo.value.line == 2

    def test_wrong_column_count_names_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0.5,east\n1.0,west,1.0,extra\n")
        with pytest.raises(TraceFormatError, match="line 2"):
            load_trace(path)

    def test_bad_jsonl_rows(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"t": 0.5, "client": "a"}\n{"t": 1.0}\n')
        with pytest.raises(TraceFormatError, match="line 2.*client"):
            load_trace(path)
        path.write_text('{"t": 0.5, "client": "a"}\nnot json\n')
        with pytest.raises(TraceFormatError, match="line 2.*JSON"):
            load_trace(path)
        path.write_text('{"client": "a"}\n')
        with pytest.raises(TraceFormatError, match="timestamp"):
            load_trace(path)

    def test_out_of_order_rejected_unless_sorted(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1.5,east\n0.5,west\n")
        with pytest.raises(TraceFormatError, match="earlier than") as excinfo:
            load_trace(path)
        assert excinfo.value.line == 2
        trace = load_trace(path, sort=True)
        assert list(trace.times) == [0.5, 1.5]
        assert trace.client_ids[trace.client_codes[0]] == "west"

    def test_post_parse_errors_name_the_file_line_past_the_header(self, tmp_path):
        # Out-of-order and bad-weight checks run after header/blank rows
        # were skipped; the reported line must still be the file's.
        path = tmp_path / "t.csv"
        path.write_text("timestamp,client,weight\n1.5,east,1.0\n0.5,west,1.0\n")
        with pytest.raises(TraceFormatError, match="line 3.*earlier than"):
            load_trace(path)
        path.write_text("timestamp,client,weight\n\n0.5,east,0.0\n")
        with pytest.raises(TraceFormatError, match="line 3.*weight") as excinfo:
            load_trace(path)
        assert excinfo.value.line == 3

    def test_rejects_nonpositive_weights_and_nonfinite_times(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("0.5,east,0.0\n")
        with pytest.raises(TraceFormatError, match="weight"):
            load_trace(path)
        path.write_text("nan,east\n")
        with pytest.raises(TraceFormatError, match="finite"):
            load_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("timestamp,client\n")
        with pytest.raises(TraceFormatError, match="no events"):
            load_trace(path)

    def test_unknown_extension_needs_format(self, tmp_path):
        path = tmp_path / "t.log"
        path.write_text("0.5,east\n")
        with pytest.raises(TraceFormatError, match="infer"):
            load_trace(path)
        assert load_trace(path, format="csv").events == 1

    def test_file_round_trip_csv_and_jsonl(self, tmp_path):
        trace = make_trace([0.5, 1.0, 2.0], [0, 1, 0], [1.0, 2.0, 1.5])
        for name in ("t.csv", "t.jsonl", "t.csv.gz", "t.jsonl.gz"):
            path = tmp_path / name
            if name.startswith("t.csv"):
                trace.to_csv(path)
            else:
                trace.to_jsonl(path)
            back = load_trace(path)
            assert back.events == trace.events
            np.testing.assert_allclose(back.times, trace.times)
            np.testing.assert_allclose(back.weights, trace.weights)
            assert [back.client_ids[c] for c in back.client_codes] == [
                trace.client_ids[c] for c in trace.client_codes
            ]


# --------------------------------------------------------------------------- #
# epoch detection and rate estimation
# --------------------------------------------------------------------------- #
class TestEpochDetection:
    def test_flat_trace_yields_single_epoch(self):
        rng = np.random.default_rng(11)
        trace = make_trace(np.sort(rng.uniform(0.0, 50.0, size=4000)))
        model = detect_epochs(trace)
        assert model.epoch_count == 1
        assert model.method == "detected"

    def test_boundary_lands_on_known_changepoint(self):
        # Rate 50 -> 150 at t=60 over [0, 120]; the detected boundary must
        # land within two histogram bin widths of the true changepoint.
        rng = np.random.default_rng(5)
        from repro.workloads.distributions import inversion_poisson_arrivals

        times = inversion_poisson_arrivals(
            rng, [0.0, 60.0, 120.0], [50.0, 150.0]
        )
        trace = make_trace(times)
        model = detect_epochs(trace)
        assert model.epoch_count == 2
        bin_width = trace.duration / 256
        assert abs(model.boundaries[1] - 60.0) <= 2 * bin_width
        # and the estimated per-epoch rates match the generating ones
        assert model.total_rates[0] == pytest.approx(50.0, rel=0.1)
        assert model.total_rates[1] == pytest.approx(150.0, rel=0.1)

    def test_min_segment_guard_caps_epochs(self):
        rng = np.random.default_rng(9)
        from repro.workloads.distributions import inversion_poisson_arrivals

        times = inversion_poisson_arrivals(
            rng,
            [0.0, 30.0, 60.0, 90.0, 120.0],
            [40.0, 160.0, 40.0, 160.0],
        )
        trace = make_trace(times)
        model = detect_epochs(trace, max_epochs=2)
        assert model.epoch_count <= 2

    def test_fixed_epochs_grid_and_mass_conservation(self):
        trace = make_trace(
            [0.0, 1.0, 2.0, 3.0, 4.0], [0, 0, 1, 1, 0], [1.0, 1.0, 2.0, 2.0, 1.0]
        )
        model = fixed_epochs(trace, 4)
        np.testing.assert_allclose(model.boundaries, [0.0, 1.0, 2.0, 3.0, 4.0])
        # every event's weight lands in exactly one epoch (the final event
        # clamps into the last epoch)
        assert (model.rates * model.widths[:, None]).sum() == pytest.approx(
            trace.total_weight
        )

    def test_zero_span_trace_rejected(self):
        trace = make_trace([1.0, 1.0, 1.0])
        with pytest.raises(WorkloadError, match="zero-length"):
            fixed_epochs(trace, 2)
        with pytest.raises(WorkloadError, match="zero-length"):
            detect_epochs(trace)

    def test_deterministic_rates_on_even_grid(self):
        # 1 event per time unit for client "a", 2 per unit for client "b".
        times = np.concatenate([np.arange(0.0, 10.0, 1.0), np.arange(0.0, 10.0, 0.5)])
        codes = np.concatenate([np.zeros(10, dtype=int), np.ones(20, dtype=int)])
        order = np.argsort(times, kind="stable")
        trace = Trace(times[order], codes[order], np.ones(times.size), ("a", "b"))
        model = fixed_epochs(trace, 1)
        assert model.rates[0, 0] == pytest.approx(10 / trace.duration)
        assert model.rates[0, 1] == pytest.approx(20 / trace.duration)


# --------------------------------------------------------------------------- #
# the round-trip property: estimate(export(trajectory))
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    TOLERANCE_SIGMA = 5.0

    def _assert_rates_match(self, model, trajectory, duration):
        members = [set(p.tree.client_ids) for p in trajectory]
        for j, cid in enumerate(model.client_ids):
            for t, (problem, present) in enumerate(zip(trajectory, members)):
                true = (
                    float(problem.tree.client(cid).requests)
                    if cid in present
                    else 0.0
                )
                sigma = np.sqrt(max(true, 1.0) / duration)
                assert abs(model.rates[t, j] - true) <= (
                    self.TOLERANCE_SIGMA * sigma + 0.5
                ), f"client {cid} epoch {t}: {model.rates[t, j]} vs {true}"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rate_churn_round_trip(self, tree, seed):
        trajectory = rate_churn(tree, 5, churn=0.4, magnitude=0.6, seed=seed)
        duration = 8.0
        trace = sample_trace(
            trajectory, np.random.default_rng(100 + seed), epoch_duration=duration
        )
        model = fixed_epochs(trace, len(trajectory))
        # the fixed grid recovers the generating boundaries (trimmed to the
        # first/last event, which lie within one epoch of the true edges)
        assert model.epoch_count == len(trajectory)
        assert trace.duration <= duration * len(trajectory)
        self._assert_rates_match(model, trajectory, duration)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_seasonal_round_trip(self, tree, seed):
        trajectory = seasonal(tree, 6, amplitude=0.4, period=4.0)
        duration = 8.0
        trace = sample_trace(
            trajectory, np.random.default_rng(seed), epoch_duration=duration
        )
        model = fixed_epochs(trace, len(trajectory))
        self._assert_rates_match(model, trajectory, duration)

    def test_problem_forks_feed_the_incremental_resolver(self, tree):
        from repro.api import solve_sequence

        trajectory = rate_churn(tree, 4, churn=0.3, seed=2)
        trace = sample_trace(
            trajectory, np.random.default_rng(8), epoch_duration=10.0
        )
        model = fixed_epochs(trace, 4)
        epochs = model.problems(tree)
        assert len(epochs) == 4
        # structure-shared forks: same node ids, rates from the trace
        assert epochs[0].tree.client_ids == tree.client_ids
        incremental = solve_sequence(epochs, policy="multiple", mode="incremental")
        scratch = solve_sequence(epochs, policy="multiple", mode="scratch")
        assert incremental.costs == scratch.costs

    def test_unknown_client_rejected_against_tree(self, tree):
        trace = make_trace([0.0, 1.0, 2.0], [0, 0, 0])  # client "c0"
        trace = Trace(
            trace.times, trace.client_codes, trace.weights, ("not-a-client",)
        )
        model = fixed_epochs(trace, 2)
        with pytest.raises(TraceFormatError, match="not-a-client"):
            model.problems(tree)

    def test_sample_trace_rejects_degenerate_inputs(self, tree):
        with pytest.raises(WorkloadError, match="no epochs"):
            sample_trace([], np.random.default_rng(0))
        with pytest.raises(WorkloadError, match="epoch_duration"):
            sample_trace([tree], np.random.default_rng(0), epoch_duration=0.0)
        silent = tree.with_requests({c: 0.0 for c in tree.client_ids})
        with pytest.raises(WorkloadError, match="all zero"):
            sample_trace([silent], np.random.default_rng(0))


# --------------------------------------------------------------------------- #
# replay: arrival schedules and sequence simulation spans
# --------------------------------------------------------------------------- #
class TestReplay:
    def test_arrival_schedule_rescales_horizon_and_rate(self):
        rng = np.random.default_rng(21)
        from repro.workloads.distributions import inversion_poisson_arrivals

        times = inversion_poisson_arrivals(rng, [0.0, 40.0, 80.0], [30.0, 90.0])
        trace = make_trace(times)
        model = fixed_epochs(trace, 2)
        schedule = model.arrival_schedule(
            np.random.default_rng(4), horizon=2.0, mean_rate=100.0
        )
        assert schedule.size > 0
        assert schedule[0] >= 0.0 and schedule[-1] <= 2.0
        assert np.all(np.diff(schedule) >= 0)
        # expected count = mean_rate * horizon = 200; allow 5 sigma
        assert abs(schedule.size - 200) <= 5 * np.sqrt(200)
        # the second half must be busier (90 vs 30 source intensity)
        first = int(np.searchsorted(schedule, 1.0))
        assert schedule.size - first > first

    def test_arrival_schedule_validates(self):
        trace = make_trace([0.0, 1.0, 2.0])
        model = fixed_epochs(trace, 1)
        with pytest.raises(WorkloadError, match="horizon"):
            model.arrival_schedule(np.random.default_rng(0), horizon=-1.0)
        with pytest.raises(WorkloadError, match="mean_rate"):
            model.arrival_schedule(np.random.default_rng(0), mean_rate=np.inf)

    def test_simulate_sequence_carries_spans(self, tree):
        from repro.api import solve_sequence

        trajectory = rate_churn(tree, 3, churn=0.2, seed=5)
        trace = sample_trace(
            trajectory, np.random.default_rng(6), epoch_duration=10.0
        )
        model = fixed_epochs(trace, 3)
        epochs = model.problems(tree)
        result = solve_sequence(epochs, policy="multiple", on_error="none")
        spans = list(zip(model.boundaries[:-1], model.boundaries[1:]))
        replay = simulate_sequence(epochs, result.solutions, spans=spans)
        assert replay.spans is not None
        assert len(replay.spans) == 3
        durations = replay.epoch_durations()
        assert sum(durations) == pytest.approx(trace.duration)
        assert "epochs replayed over" in replay.summary()
        weighted = replay.time_weighted_mean_latency()
        if any(sim is not None for sim in replay.epochs):
            assert weighted is not None and weighted >= 0.0

    def test_simulate_sequence_span_mismatch_rejected(self, tree):
        from repro.api import solve_sequence

        trajectory = rate_churn(tree, 2, churn=0.2, seed=5)
        result = solve_sequence(trajectory, policy="multiple", on_error="none")
        with pytest.raises(ValueError, match="spans"):
            simulate_sequence(
                trajectory, result.solutions, spans=[(0.0, 1.0)]
            )
        with pytest.raises(ValueError, match="start <= end"):
            simulate_sequence(
                trajectory, result.solutions, spans=[(0.0, 1.0), (3.0, 2.0)]
            )

    def test_loadgen_accepts_explicit_arrivals(self):
        from repro.serving.loadgen import LoadgenConfig, build_schedule

        config = LoadgenConfig(tenants=2, size=12, horizon=1.0, rate=20.0)
        explicit = np.array([0.0, 0.1, 0.5, 0.9])
        arrivals, picks, tenants = build_schedule(config, arrivals=explicit)
        np.testing.assert_allclose(arrivals, explicit)
        assert picks.size == explicit.size
        assert len(tenants) == 2
        with pytest.raises(WorkloadError, match="sorted"):
            build_schedule(config, arrivals=np.array([0.5, 0.1]))
        with pytest.raises(WorkloadError, match="finite"):
            build_schedule(config, arrivals=np.array([0.1, np.nan]))


# --------------------------------------------------------------------------- #
# TraceSummary result protocol + CLI surface
# --------------------------------------------------------------------------- #
class TestTraceSummaryAndCli:
    def test_summary_round_trips_through_result_protocol(self):
        trace = make_trace([0.0, 1.0, 2.0, 3.0], [0, 1, 0, 1])
        model = fixed_epochs(trace, 2)
        summary = model.summary(path="demo.jsonl")
        clone = result_from_json(summary.to_json())
        assert isinstance(clone, TraceSummary)
        assert clone.to_dict() == summary.to_dict()
        assert "4 events" in clone.describe()
        assert "epoch 0" in clone.rate_table()

    def test_trace_info_cli(self, tmp_path, capsys):
        trace = make_trace(np.linspace(0.0, 9.0, 40), np.arange(40) % 2)
        path = tmp_path / "t.jsonl"
        trace.to_jsonl(path)
        assert main(["trace", "info", str(path), "--epochs", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 epoch(s) (fixed)" in out
        assert main(["trace", "info", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["type"] == "trace_summary"
        assert payload["events"] == 40
        decoded = result_from_json(json.dumps(payload))
        assert isinstance(decoded, TraceSummary)

    def test_trace_info_cli_rejects_malformed(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("0.5,east\nbroken,west\n")
        assert main(["trace", "info", str(path)]) == 1
        err = capsys.readouterr().err
        assert "line 2" in err

    def test_dynamic_trace_cli(self, tmp_path, capsys, tree):
        tree_path = tmp_path / "tree.json"
        save_tree(tree, tree_path)
        base = as_base_problem(tree)
        trace = sample_trace(
            [base, base], np.random.default_rng(3), epoch_duration=8.0
        )
        trace_path = tmp_path / "t.csv"
        trace.to_csv(trace_path)
        code = main(
            [
                "dynamic",
                str(tree_path),
                "--trace",
                str(trace_path),
                "--simulate",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code in (0, 2)
        payload = json.loads(captured.out)
        assert payload["trajectory"] == "trace"
        assert payload["trace"]["events"] == trace.events
        assert len(payload["trace"]["boundaries"]) >= 2
        assert "replay" in payload

    def test_loadtest_trace_cli(self, tmp_path, capsys):
        trace = make_trace(np.sort(np.random.default_rng(1).uniform(0, 10, 500)))
        path = tmp_path / "t.jsonl"
        trace.to_jsonl(path)
        code = main(
            [
                "loadtest",
                "--trace",
                str(path),
                "--horizon",
                "0.3",
                "--rate",
                "60",
                "--tenants",
                "2",
                "--size",
                "12",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["type"] == "loadtest_report"
        assert payload["served"] == payload["scheduled"]
